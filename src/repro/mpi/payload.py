"""Payload abstraction: the data collectives carry.

Collective algorithms are written once against the small
:class:`PayloadOps` interface and run in two modes:

* **Data mode** (:class:`NumpyOps`): payloads are numpy arrays; reductions
  actually happen.  Used for correctness tests (hypothesis property tests
  assert allreduce == elementwise sum) and for the real
  :mod:`repro.npnn` data-parallel trainer.
* **Timing mode** (:class:`VirtualOps`): payloads are
  :class:`VirtualBuffer` size-only placeholders, so the same message
  schedules execute at 132-GPU scale without allocating 132 × 164 MB of
  gradients.

Splits are *balanced contiguous* splits in element units (numpy) or byte
units rounded to the element size (virtual), matching how ring/Rabenseifner
implementations segment buffers in practice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Protocol, runtime_checkable

import numpy as np

__all__ = [
    "NUMPY_OPS",
    "NumpyOps",
    "PayloadOps",
    "VIRTUAL_OPS",
    "VirtualBuffer",
    "VirtualOps",
    "ops_for",
]


@runtime_checkable
class PayloadOps(Protocol):
    """Operations a collective algorithm needs on its payload type."""

    def nbytes(self, x: Any) -> int:
        """Size of payload ``x`` in bytes."""
        ...

    def split(self, x: Any, k: int) -> list[Any]:
        """Split ``x`` into ``k`` contiguous balanced segments."""
        ...

    def concat(self, parts: list[Any]) -> Any:
        """Concatenate segments back into one payload."""
        ...

    def add(self, a: Any, b: Any) -> Any:
        """Elementwise sum of equal-shaped payloads."""
        ...

    def clone(self, x: Any) -> Any:
        """An independent copy of ``x`` (simulated device-to-device copy)."""
        ...

    def scale(self, x: Any, s: float) -> Any:
        """Payload scaled by scalar ``s`` (used for averaging)."""
        ...


class NumpyOps:
    """Real data movement: payloads are 1-D numpy arrays."""

    def nbytes(self, x: np.ndarray) -> int:
        """Byte size of the array."""
        return int(x.nbytes)

    def split(self, x: np.ndarray, k: int) -> list[np.ndarray]:
        """Balanced contiguous split (``np.array_split`` semantics)."""
        if k < 1:
            raise ValueError(f"split into {k} parts")
        return [np.ascontiguousarray(part) for part in np.array_split(x, k)]

    def concat(self, parts: list[np.ndarray]) -> np.ndarray:
        """Concatenate along axis 0."""
        return np.concatenate(parts) if parts else np.empty(0)

    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Elementwise sum (fresh array; inputs unmodified)."""
        if a.shape != b.shape:
            raise ValueError(f"shape mismatch in reduce: {a.shape} vs {b.shape}")
        return a + b

    def clone(self, x: np.ndarray) -> np.ndarray:
        """Deep copy."""
        return x.copy()

    def scale(self, x: np.ndarray, s: float) -> np.ndarray:
        """Scalar multiply."""
        return x * s


@dataclass(frozen=True)
class VirtualBuffer:
    """A size-only stand-in for a device buffer.

    ``elem_size`` is the element width in bytes (4 for fp32 gradients,
    2 for fp16-compressed); splits respect element boundaries.
    """

    nbytes: int
    elem_size: int = 4

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError(f"negative buffer size {self.nbytes}")
        if self.elem_size < 1:
            raise ValueError(f"bad element size {self.elem_size}")
        if self.nbytes % self.elem_size:
            raise ValueError(
                f"size {self.nbytes} not a multiple of elem_size {self.elem_size}"
            )

    @property
    def numel(self) -> int:
        """Number of elements in the buffer."""
        return self.nbytes // self.elem_size


class VirtualOps:
    """Timing-only payloads: track sizes, move no data."""

    def nbytes(self, x: VirtualBuffer) -> int:
        """Byte size of the virtual buffer."""
        return x.nbytes

    def split(self, x: VirtualBuffer, k: int) -> list[VirtualBuffer]:
        """Balanced element split, mirroring ``np.array_split``."""
        if k < 1:
            raise ValueError(f"split into {k} parts")
        n, rem = divmod(x.numel, k)
        return [
            VirtualBuffer((n + (1 if i < rem else 0)) * x.elem_size, x.elem_size)
            for i in range(k)
        ]

    def concat(self, parts: list[VirtualBuffer]) -> VirtualBuffer:
        """Concatenation = size sum (element sizes must agree)."""
        if not parts:
            return VirtualBuffer(0)
        elem = parts[0].elem_size
        if any(p.elem_size != elem for p in parts):
            raise ValueError("cannot concat virtual buffers of different elem_size")
        return VirtualBuffer(sum(p.nbytes for p in parts), elem)

    def add(self, a: VirtualBuffer, b: VirtualBuffer) -> VirtualBuffer:
        """Reduction leaves the size unchanged; sizes must match."""
        if a.nbytes != b.nbytes:
            raise ValueError(f"size mismatch in reduce: {a.nbytes} vs {b.nbytes}")
        return a

    def clone(self, x: VirtualBuffer) -> VirtualBuffer:
        """Virtual buffers are immutable; clone is identity."""
        return x

    def scale(self, x: VirtualBuffer, s: float) -> VirtualBuffer:
        """Scaling leaves the size unchanged."""
        return x


#: Shared stateless instances.
NUMPY_OPS = NumpyOps()
VIRTUAL_OPS = VirtualOps()


def ops_for(payload: Any) -> PayloadOps:
    """Pick the right :class:`PayloadOps` for a payload instance."""
    if isinstance(payload, np.ndarray):
        return NUMPY_OPS
    if isinstance(payload, VirtualBuffer):
        return VIRTUAL_OPS
    raise TypeError(f"no payload ops for {type(payload).__name__}")
