"""Declarative fault specifications.

A :class:`FaultSchedule` is a list of typed fault specs, each anchored at
a virtual start time.  Schedules are plain data — they can be built in
code, round-tripped through dicts, or loaded from JSON files for the
``repro faults run --schedule`` CLI.  The JSON schema (one object with a
``faults`` array; times in seconds) is documented in the README.

Link endpoints are written as ``"kind:node:index"`` device strings (the
:meth:`repro.cluster.topology.Device.parse` format), e.g.
``["nic:0:0", "switch:-1:1"]`` for node 0's rail-0 NIC uplink.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Iterable, Iterator

from repro.cluster.topology import Device

__all__ = [
    "DegradedRail",
    "FaultSchedule",
    "LinkFlap",
    "ProcessKill",
    "RankCrash",
    "RankRestart",
    "StragglerGPU",
]


@dataclass(frozen=True)
class StragglerGPU:
    """One rank's compute runs ``slowdown``× slower for a window."""

    rank: int
    start_s: float
    duration_s: float
    slowdown: float = 2.0

    def __post_init__(self) -> None:
        _check_window(self)
        if self.rank < 0:
            raise ValueError("rank must be >= 0")
        if self.slowdown <= 1.0:
            raise ValueError("slowdown must be > 1 (1.0 is healthy)")


@dataclass(frozen=True)
class LinkFlap:
    """A link bounces: ``down_s`` down at the start of every ``period_s``.

    ``severity`` 0.0 means the link goes hard-down (transfers raise and
    retry); a value in (0, 1) means it degrades to that bandwidth
    fraction instead of dropping.  Cycles repeat within ``duration_s``.
    """

    link: tuple[str, str]
    start_s: float
    duration_s: float
    period_s: float
    down_s: float
    severity: float = 0.0

    def __post_init__(self) -> None:
        _check_window(self)
        _check_link(self.link)
        if self.period_s <= 0:
            raise ValueError("period_s must be > 0")
        if not 0 < self.down_s <= self.period_s:
            raise ValueError("down_s must be in (0, period_s]")
        if not 0 <= self.severity < 1:
            raise ValueError("severity must be in [0, 1)")


@dataclass(frozen=True)
class DegradedRail:
    """A link runs at ``factor`` of its nominal bandwidth for a window."""

    link: tuple[str, str]
    start_s: float
    duration_s: float
    factor: float = 0.5

    def __post_init__(self) -> None:
        _check_window(self)
        _check_link(self.link)
        if not 0 < self.factor < 1:
            raise ValueError("factor must be in (0, 1)")


@dataclass(frozen=True)
class RankCrash:
    """A rank's process dies at ``start_s`` (no self-revert)."""

    rank: int
    start_s: float

    def __post_init__(self) -> None:
        if self.start_s < 0:
            raise ValueError("start_s must be >= 0")
        if self.rank < 0:
            raise ValueError("rank must be >= 0")


@dataclass(frozen=True)
class RankRestart:
    """A previously crashed rank rejoins elastically at ``start_s``."""

    rank: int
    start_s: float

    def __post_init__(self) -> None:
        if self.start_s < 0:
            raise ValueError("start_s must be >= 0")
        if self.rank < 0:
            raise ValueError("rank must be >= 0")


@dataclass(frozen=True)
class ProcessKill:
    """The whole training job is killed (preemption/SIGKILL) at ``start_s``.

    Unlike :class:`RankCrash`, nothing survives to detect or recover —
    the run ends with partial statistics.  Pair with a
    :class:`~repro.checkpoint.CheckpointPlan`: the state captured at the
    last iteration boundary before the kill feeds
    :func:`~repro.checkpoint.resume_training`, which strips pending
    ``ProcessKill`` specs (the kill models the interruption itself, not
    workload behaviour).
    """

    start_s: float

    def __post_init__(self) -> None:
        if self.start_s < 0:
            raise ValueError("start_s must be >= 0")


#: JSON ``type`` tag ↔ spec class.
_TYPES = {
    "straggler": StragglerGPU,
    "link_flap": LinkFlap,
    "degraded_rail": DegradedRail,
    "rank_crash": RankCrash,
    "rank_restart": RankRestart,
    "process_kill": ProcessKill,
}
_TAGS = {cls: tag for tag, cls in _TYPES.items()}

FaultSpec = (
    StragglerGPU | LinkFlap | DegradedRail | RankCrash | RankRestart | ProcessKill
)


@dataclass(frozen=True)
class FaultSchedule:
    """An ordered collection of fault specs for one run."""

    faults: tuple = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        for spec in self.faults:
            if type(spec) not in _TAGS:
                raise TypeError(f"not a fault spec: {spec!r}")

    def __iter__(self) -> Iterator[FaultSpec]:
        return iter(self.faults)

    def __len__(self) -> int:
        return len(self.faults)

    @classmethod
    def of(cls, *specs: FaultSpec) -> "FaultSchedule":
        """Build from spec arguments."""
        return cls(tuple(specs))

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FaultSchedule":
        """Parse the ``{"faults": [{"type": ..., ...}, ...]}`` form."""
        if not isinstance(data, dict) or "faults" not in data:
            raise ValueError("schedule must be an object with a 'faults' array")
        specs = []
        for i, item in enumerate(data["faults"]):
            if not isinstance(item, dict) or "type" not in item:
                raise ValueError(f"fault #{i} must be an object with a 'type'")
            kind = item["type"]
            spec_cls = _TYPES.get(kind)
            if spec_cls is None:
                raise ValueError(
                    f"fault #{i}: unknown type {kind!r} "
                    f"(expected one of {sorted(_TYPES)})"
                )
            kwargs = {k: v for k, v in item.items() if k != "type"}
            if "link" in kwargs:
                link = kwargs["link"]
                if not (isinstance(link, (list, tuple)) and len(link) == 2):
                    raise ValueError(f"fault #{i}: link must be a 2-element array")
                kwargs["link"] = (str(link[0]), str(link[1]))
            try:
                specs.append(spec_cls(**kwargs))
            except TypeError as err:
                raise ValueError(f"fault #{i} ({kind}): {err}") from err
        return cls(tuple(specs)).validate()

    @classmethod
    def from_json(cls, text: str) -> "FaultSchedule":
        """Parse a JSON document in the :meth:`from_dict` schema."""
        return cls.from_dict(json.loads(text))

    def to_dict(self) -> dict[str, Any]:
        """Inverse of :meth:`from_dict` (round-trip safe)."""
        out = []
        for spec in self.faults:
            d = asdict(spec)
            if "link" in d:
                d["link"] = list(d["link"])
            out.append({"type": _TAGS[type(spec)], **d})
        return {"faults": out}

    def to_json(self) -> str:
        """Serialize to the JSON schema ``from_json`` reads."""
        return json.dumps(self.to_dict(), indent=1)

    def end_s(self) -> float:
        """Virtual time when the last fault window closes."""
        ends = [
            spec.start_s + getattr(spec, "duration_s", 0.0) for spec in self.faults
        ]
        return max(ends, default=0.0)

    def validate(self) -> "FaultSchedule":
        """Cross-spec consistency checks; returns ``self`` when clean.

        Individual specs already validate their own fields in
        ``__post_init__``; this catches combinations that are well-formed
        in isolation but nonsensical together.  It runs automatically on
        :meth:`from_dict`/:meth:`from_json` input (hand-built schedules
        may intentionally model pathological sequences, e.g. the
        runtime-only restart tests, so :meth:`of` does not call it).
        """
        # Crash/restart pairing must alternate per rank, in time order.
        crash_like: dict[int, list] = {}
        for spec in self.faults:
            if isinstance(spec, (RankCrash, RankRestart)):
                crash_like.setdefault(spec.rank, []).append(spec)
        for rank, specs in crash_like.items():
            crashed = False
            for spec in sorted(specs, key=lambda s: s.start_s):
                if isinstance(spec, RankCrash):
                    if crashed:
                        raise ValueError(
                            f"rank {rank} crashes again at {spec.start_s:g}s "
                            "without a rank_restart in between"
                        )
                    crashed = True
                else:
                    if not crashed:
                        raise ValueError(
                            f"rank_restart at {spec.start_s:g}s has no "
                            f"preceding rank_crash for rank {rank}"
                        )
                    crashed = False
        # Two flap windows on one link cannot overlap: each cycle's
        # revert restores the state captured at ITS window start, so
        # interleaved windows would fight over the link's true state.
        flaps: dict[tuple[str, str], list[LinkFlap]] = {}
        for spec in self.faults:
            if isinstance(spec, LinkFlap):
                flaps.setdefault(tuple(spec.link), []).append(spec)
        for link, specs in flaps.items():
            ordered = sorted(specs, key=lambda s: s.start_s)
            for a, b in zip(ordered, ordered[1:]):
                a_end = a.start_s + a.duration_s
                if b.start_s < a_end:
                    raise ValueError(
                        f"overlapping link_flap windows on link "
                        f"{link[0]}--{link[1]}: "
                        f"[{a.start_s:g},{a_end:g})s and "
                        f"[{b.start_s:g},{b.start_s + b.duration_s:g})s"
                    )
        return self


def _check_window(spec: Any) -> None:
    if spec.start_s < 0:
        raise ValueError("start_s must be >= 0")
    if spec.duration_s <= 0:
        raise ValueError("duration_s must be > 0")


def _check_link(link: Iterable[str]) -> None:
    a, b = link
    Device.parse(a)
    Device.parse(b)
