"""Fault injection and resilience for the simulated cluster.

Two halves:

* **Injection** (:mod:`repro.faults.spec`, :mod:`repro.faults.injector`) —
  declarative, time-scheduled faults (straggler GPUs, flapping or
  degraded links, rank crashes and elastic restarts) applied to a live
  simulation and reverted exactly when their window closes.
* **Response** — the resilience mechanisms live with the components they
  protect: transfer retry/backoff in :class:`repro.mpi.communicator.Comm`,
  the negotiation-deadline failure detector and elastic communicator
  shrink in :class:`repro.horovod.runtime.HorovodRuntime`, and process
  kill/restart handling in :class:`repro.train.trainer.DistributedTrainer`.

Experiment E13 (``repro run E13`` / ``repro faults run``) sweeps schedules
built from these specs and reports retained throughput.
"""

from repro.faults.injector import FaultInjector, InjectorStats
from repro.faults.spec import (
    DegradedRail,
    FaultSchedule,
    LinkFlap,
    ProcessKill,
    RankCrash,
    RankRestart,
    StragglerGPU,
)

__all__ = [
    "DegradedRail",
    "FaultInjector",
    "FaultSchedule",
    "InjectorStats",
    "LinkFlap",
    "ProcessKill",
    "RankCrash",
    "RankRestart",
    "StragglerGPU",
]
