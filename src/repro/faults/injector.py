"""The fault injector: schedules applied to a live simulation.

:class:`FaultInjector` turns a declarative :class:`~repro.faults.spec.FaultSchedule`
into discrete-event processes — one per fault — that mutate the live
topology / runtime / trainer at each fault's virtual start time and
revert the mutation when the window expires (restoring route caches and
link specs exactly).  Crash/restart faults drive the trainer's process
lifecycle and the runtime's membership reports instead.

Wiring order for a full training run::

    injector = FaultInjector(env, schedule, topology=topo, timeline=runtime.timeline)
    injector.bind(runtime=runtime, trainer=trainer)
    injector.start()          # before env.run() / trainer.run()

The injector is deliberately duck-typed towards the trainer: anything
with ``kill_rank`` / ``restart_rank`` works, and
:meth:`compute_multiplier` is the hook the trainer polls for straggler
slowdowns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.cluster.topology import Device, Topology
from repro.faults.spec import (
    DegradedRail,
    FaultSchedule,
    LinkFlap,
    ProcessKill,
    RankCrash,
    RankRestart,
    StragglerGPU,
)
from repro.horovod.timeline import Timeline
from repro.sim import Environment

__all__ = ["FaultInjector", "InjectorStats"]


@dataclass
class InjectorStats:
    """What the injector did, for run reports."""

    applied: int = 0
    reverted: int = 0
    flap_cycles: int = 0
    crashes: int = 0
    restarts: int = 0
    kills: int = 0


class FaultInjector:
    """Executes a fault schedule against a live simulation."""

    def __init__(self, env: Environment, schedule: FaultSchedule,
                 topology: Topology | None = None,
                 timeline: Timeline | None = None) -> None:
        self.env = env
        self.schedule = schedule
        self.topology = topology
        self.timeline = timeline
        self.runtime: Any | None = None
        self.trainer: Any | None = None
        self.stats = InjectorStats()
        self._straggler_mult: dict[int, list[float]] = {}
        self._started = False

    def bind(self, runtime: Any | None = None, trainer: Any | None = None) -> "FaultInjector":
        """Attach the runtime/trainer that rank faults act on."""
        if runtime is not None:
            self.runtime = runtime
        if trainer is not None:
            self.trainer = trainer
        return self

    def start(self) -> "FaultInjector":
        """Spawn one driver process per scheduled fault (idempotent)."""
        if self._started:
            return self
        self._started = True
        for spec in self.schedule:
            self.env.process(self._drive(spec))
        return self

    # -- trainer hook ----------------------------------------------------------
    def compute_multiplier(self, rank: int) -> float:
        """Product of the active straggler slowdowns for ``rank``."""
        mult = 1.0
        for factor in self._straggler_mult.get(rank, ()):
            mult *= factor
        return mult

    # -- per-fault processes ---------------------------------------------------
    def _drive(self, spec):
        yield self.env.timeout(spec.start_s)
        yield from self._fire(spec)

    def _fire(self, spec):
        if isinstance(spec, StragglerGPU):
            yield from self._drive_straggler(spec)
        elif isinstance(spec, DegradedRail):
            yield from self._drive_degraded_rail(spec)
        elif isinstance(spec, LinkFlap):
            yield from self._drive_link_flap(spec)
        elif isinstance(spec, RankCrash):
            self._apply_crash(spec)
        elif isinstance(spec, RankRestart):
            self._apply_restart(spec)
        elif isinstance(spec, ProcessKill):
            self._apply_kill(spec)

    def _drive_straggler(self, spec: StragglerGPU):
        start = self.env.now
        self._straggler_mult.setdefault(spec.rank, []).append(spec.slowdown)
        self.stats.applied += 1
        yield self.env.timeout(spec.duration_s)
        self._straggler_mult[spec.rank].remove(spec.slowdown)
        self.stats.reverted += 1
        self._record(f"straggler_rank{spec.rank}_x{spec.slowdown:g}", start)

    def _drive_degraded_rail(self, spec: DegradedRail):
        start = self.env.now
        a, b = self._endpoints(spec)
        prior = self.topology.link_factor(a, b)
        self.topology.set_link_factor(a, b, prior * spec.factor)
        self.stats.applied += 1
        yield self.env.timeout(spec.duration_s)
        self.topology.set_link_factor(a, b, prior)
        self.stats.reverted += 1
        self._record(f"degraded_{a}--{b}_x{spec.factor:g}", start)

    def _drive_link_flap(self, spec: LinkFlap):
        start = self.env.now
        a, b = self._endpoints(spec)
        self.stats.applied += 1
        prior = self.topology.link_factor(a, b)
        end = start + spec.duration_s
        while self.env.now < end:
            # Down window (clipped at the fault's end).
            down = min(spec.down_s, end - self.env.now)
            if spec.severity == 0.0:
                self.topology.set_link_up(a, b, False)
            else:
                self.topology.set_link_factor(a, b, prior * spec.severity)
            self.stats.flap_cycles += 1
            yield self.env.timeout(down)
            self.topology.set_link_up(a, b, True)
            self.topology.set_link_factor(a, b, prior)
            remainder = spec.period_s - spec.down_s
            if remainder <= 0 or self.env.now >= end:
                break
            yield self.env.timeout(min(remainder, end - self.env.now))
        self.stats.reverted += 1
        self._record(f"flap_{a}--{b}", start)

    def _apply_crash(self, spec: RankCrash) -> None:
        if self.trainer is not None:
            self.trainer.kill_rank(spec.rank)
        if self.runtime is not None:
            self.runtime.report_crash(spec.rank)
        if self.trainer is None and self.runtime is None:
            raise RuntimeError(
                "RankCrash fired but neither trainer nor runtime is bound"
            )
        self.stats.applied += 1
        self.stats.crashes += 1
        self._record(f"crash_rank{spec.rank}", self.env.now)

    def _apply_restart(self, spec: RankRestart) -> None:
        if self.trainer is None and self.runtime is None:
            raise RuntimeError(
                "RankRestart fired but neither trainer nor runtime is bound"
            )
        if self.trainer is not None:
            # The trainer's restart process drains stale state and then
            # re-admits the rank via runtime.report_restart itself.
            self.trainer.restart_rank(spec.rank)
        elif self.runtime is not None:
            self.runtime.report_restart(spec.rank)
        self.stats.applied += 1
        self.stats.restarts += 1
        self._record(f"restart_rank{spec.rank}", self.env.now)

    def _apply_kill(self, spec: ProcessKill) -> None:
        if self.trainer is None:
            raise RuntimeError("ProcessKill fired but no trainer is bound")
        self.stats.applied += 1
        self.stats.kills += 1
        self._record("kill_job", self.env.now)
        self.trainer.kill_job(f"process_kill at {spec.start_s:g}s")

    # -- checkpoint resume -----------------------------------------------------
    def start_resumed(self) -> "FaultInjector":
        """Rejoin the schedule mid-flight at the current simulated time.

        Used by :func:`repro.checkpoint.resume_training` after
        :attr:`stats` has been restored from the checkpoint.  Replays the
        schedule's link mutations up to ``env.now`` with the exact float
        arithmetic of the live drivers, sets the resulting absolute
        (factor, up) state on the fresh topology, re-applies straggler
        multipliers for windows spanning the instant, and spawns
        continuation processes that walk each in-flight window's
        remaining edges at their original absolute times
        (:meth:`~repro.sim.Environment.timeout_until` — no float drift).
        Already-counted ``applied``/``flap_cycles`` are not re-counted.
        """
        if self._started:
            return self
        self._started = True
        now = self.env.now
        final, windows = _link_history(self.schedule, now)
        if self.topology is not None:
            for (a_s, b_s), (factor, up) in final.items():
                a, b = Device.parse(a_s), Device.parse(b_s)
                self.topology.set_link_factor(a, b, factor)
                self.topology.set_link_up(a, b, up)
        for spec in self.schedule:
            if isinstance(spec, StragglerGPU):
                if spec.start_s <= now < spec.start_s + spec.duration_s:
                    self._straggler_mult.setdefault(spec.rank, []).append(
                        spec.slowdown
                    )
        for i, spec in enumerate(self.schedule):
            if spec.start_s > now:
                self.env.process(self._drive_pending_resumed(spec))
            elif isinstance(spec, StragglerGPU) and now < spec.start_s + spec.duration_s:
                self.env.process(self._resume_straggler(spec))
            elif isinstance(spec, (DegradedRail, LinkFlap)):
                w = windows[i]
                if now < w.finish_t:
                    self.env.process(self._resume_window(spec, w))
        return self

    def _drive_pending_resumed(self, spec):
        # timeout_until keeps the original absolute fire time exact
        # (0.0 + start_s == start_s, but now + (start_s - now) need not be).
        yield self.env.timeout_until(spec.start_s)
        yield from self._fire(spec)

    def _resume_straggler(self, spec: StragglerGPU):
        # applied was counted (and the multiplier re-added) already —
        # only the revert remains.
        yield self.env.timeout_until(spec.start_s + spec.duration_s)
        self._straggler_mult[spec.rank].remove(spec.slowdown)
        self.stats.reverted += 1
        self._record(
            f"straggler_rank{spec.rank}_x{spec.slowdown:g}", spec.start_s
        )

    def _resume_window(self, spec, w: "_Window"):
        a, b = self._endpoints(spec)
        for t, op in w.ops:
            if t <= self.env.now:
                continue
            yield self.env.timeout_until(t)
            if op == "down":
                if spec.severity == 0.0:
                    self.topology.set_link_up(a, b, False)
                else:
                    self.topology.set_link_factor(a, b, w.prior * spec.severity)
                self.stats.flap_cycles += 1
            elif op == "up":
                self.topology.set_link_up(a, b, True)
                self.topology.set_link_factor(a, b, w.prior)
            elif op == "revert":
                self.topology.set_link_factor(a, b, w.prior)
        if self.env.now < w.finish_t:
            yield self.env.timeout_until(w.finish_t)
        self.stats.reverted += 1
        label = (
            f"degraded_{a}--{b}_x{spec.factor:g}"
            if isinstance(spec, DegradedRail)
            else f"flap_{a}--{b}"
        )
        self._record(label, spec.start_s)

    # -- helpers ---------------------------------------------------------------
    def _endpoints(self, spec) -> tuple[Device, Device]:
        if self.topology is None:
            raise RuntimeError(
                f"{type(spec).__name__} needs a topology but none was given"
            )
        return Device.parse(spec.link[0]), Device.parse(spec.link[1])

    def _record(self, label: str, start_s: float) -> None:
        if self.timeline is not None:
            self.timeline.record("FAULT", label, start_s, self.env.now)


@dataclass
class _Window:
    """One link-mutating window's replayed edge history."""

    index: int
    link: tuple[str, str]
    #: Link factor at window start (what the live driver captured).
    prior: float
    #: ``(time, op)`` edges: apply/revert (rail) or down/up (flap).
    ops: list
    #: When the live driver's generator ends (reverted++ / record).
    finish_t: float


def _link_history(schedule, until: float):
    """Replay the schedule's link mutations with live-driver arithmetic.

    Returns ``(final, windows)``: ``final`` maps each touched link to its
    absolute ``(factor, up)`` state once every edge with time <= ``until``
    has been applied (events at exactly ``until`` fired before the
    checkpoint finalizer, so they count as done), and ``windows`` carries
    per-window priors and edge lists for the continuation processes.

    The edge times use the same incremental float expressions the live
    generators evaluate (``t = t + down``, ``end = start + duration``),
    so continuation sleeps land on bit-identical instants.
    """
    windows: list[_Window] = []
    for i, spec in enumerate(schedule):
        if isinstance(spec, DegradedRail):
            start = spec.start_s
            end = start + spec.duration_s
            windows.append(_Window(
                index=i, link=tuple(spec.link), prior=1.0,
                ops=[(start, "apply"), (end, "revert")], finish_t=end,
            ))
        elif isinstance(spec, LinkFlap):
            start = spec.start_s
            end = start + spec.duration_s
            ops = []
            t = start
            while t < end:
                down = min(spec.down_s, end - t)
                ops.append((t, "down"))
                t = t + down
                ops.append((t, "up"))
                remainder = spec.period_s - spec.down_s
                if remainder <= 0 or t >= end:
                    break
                t = t + min(remainder, end - t)
            windows.append(_Window(
                index=i, link=tuple(spec.link), prior=1.0,
                ops=ops, finish_t=t,
            ))
    by_index = {w.index: w for w in windows}
    merged = sorted(
        ((t, w.index, seq, op, w) for w in windows
         for seq, (t, op) in enumerate(w.ops)),
        key=lambda e: (e[0], e[1], e[2]),
    )
    factor: dict[tuple[str, str], float] = {}
    up: dict[tuple[str, str], bool] = {}
    for t, index, seq, op, w in merged:
        if t > until:
            continue
        spec = schedule.faults[index]
        link = w.link
        cur = factor.get(link, 1.0)
        if op == "apply":
            w.prior = cur
            factor[link] = cur * spec.factor
        elif op == "revert":
            factor[link] = w.prior
        elif op == "down":
            if seq == 0:
                w.prior = cur
            if spec.severity == 0.0:
                up[link] = False
            else:
                factor[link] = w.prior * spec.severity
        elif op == "up":
            up[link] = True
            factor[link] = w.prior
    final = {
        link: (factor.get(link, 1.0), up.get(link, True))
        for link in set(factor) | set(up)
    }
    return final, by_index
