"""The fault injector: schedules applied to a live simulation.

:class:`FaultInjector` turns a declarative :class:`~repro.faults.spec.FaultSchedule`
into discrete-event processes — one per fault — that mutate the live
topology / runtime / trainer at each fault's virtual start time and
revert the mutation when the window expires (restoring route caches and
link specs exactly).  Crash/restart faults drive the trainer's process
lifecycle and the runtime's membership reports instead.

Wiring order for a full training run::

    injector = FaultInjector(env, schedule, topology=topo, timeline=runtime.timeline)
    injector.bind(runtime=runtime, trainer=trainer)
    injector.start()          # before env.run() / trainer.run()

The injector is deliberately duck-typed towards the trainer: anything
with ``kill_rank`` / ``restart_rank`` works, and
:meth:`compute_multiplier` is the hook the trainer polls for straggler
slowdowns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.cluster.topology import Device, Topology
from repro.faults.spec import (
    DegradedRail,
    FaultSchedule,
    LinkFlap,
    RankCrash,
    RankRestart,
    StragglerGPU,
)
from repro.horovod.timeline import Timeline
from repro.sim import Environment

__all__ = ["FaultInjector", "InjectorStats"]


@dataclass
class InjectorStats:
    """What the injector did, for run reports."""

    applied: int = 0
    reverted: int = 0
    flap_cycles: int = 0
    crashes: int = 0
    restarts: int = 0


class FaultInjector:
    """Executes a fault schedule against a live simulation."""

    def __init__(self, env: Environment, schedule: FaultSchedule,
                 topology: Topology | None = None,
                 timeline: Timeline | None = None) -> None:
        self.env = env
        self.schedule = schedule
        self.topology = topology
        self.timeline = timeline
        self.runtime: Any | None = None
        self.trainer: Any | None = None
        self.stats = InjectorStats()
        self._straggler_mult: dict[int, list[float]] = {}
        self._started = False

    def bind(self, runtime: Any | None = None, trainer: Any | None = None) -> "FaultInjector":
        """Attach the runtime/trainer that rank faults act on."""
        if runtime is not None:
            self.runtime = runtime
        if trainer is not None:
            self.trainer = trainer
        return self

    def start(self) -> "FaultInjector":
        """Spawn one driver process per scheduled fault (idempotent)."""
        if self._started:
            return self
        self._started = True
        for spec in self.schedule:
            self.env.process(self._drive(spec))
        return self

    # -- trainer hook ----------------------------------------------------------
    def compute_multiplier(self, rank: int) -> float:
        """Product of the active straggler slowdowns for ``rank``."""
        mult = 1.0
        for factor in self._straggler_mult.get(rank, ()):
            mult *= factor
        return mult

    # -- per-fault processes ---------------------------------------------------
    def _drive(self, spec):
        yield self.env.timeout(spec.start_s)
        if isinstance(spec, StragglerGPU):
            yield from self._drive_straggler(spec)
        elif isinstance(spec, DegradedRail):
            yield from self._drive_degraded_rail(spec)
        elif isinstance(spec, LinkFlap):
            yield from self._drive_link_flap(spec)
        elif isinstance(spec, RankCrash):
            self._apply_crash(spec)
        elif isinstance(spec, RankRestart):
            self._apply_restart(spec)

    def _drive_straggler(self, spec: StragglerGPU):
        start = self.env.now
        self._straggler_mult.setdefault(spec.rank, []).append(spec.slowdown)
        self.stats.applied += 1
        yield self.env.timeout(spec.duration_s)
        self._straggler_mult[spec.rank].remove(spec.slowdown)
        self.stats.reverted += 1
        self._record(f"straggler_rank{spec.rank}_x{spec.slowdown:g}", start)

    def _drive_degraded_rail(self, spec: DegradedRail):
        start = self.env.now
        a, b = self._endpoints(spec)
        prior = self.topology.link_factor(a, b)
        self.topology.set_link_factor(a, b, prior * spec.factor)
        self.stats.applied += 1
        yield self.env.timeout(spec.duration_s)
        self.topology.set_link_factor(a, b, prior)
        self.stats.reverted += 1
        self._record(f"degraded_{a}--{b}_x{spec.factor:g}", start)

    def _drive_link_flap(self, spec: LinkFlap):
        start = self.env.now
        a, b = self._endpoints(spec)
        self.stats.applied += 1
        prior = self.topology.link_factor(a, b)
        end = start + spec.duration_s
        while self.env.now < end:
            # Down window (clipped at the fault's end).
            down = min(spec.down_s, end - self.env.now)
            if spec.severity == 0.0:
                self.topology.set_link_up(a, b, False)
            else:
                self.topology.set_link_factor(a, b, prior * spec.severity)
            self.stats.flap_cycles += 1
            yield self.env.timeout(down)
            self.topology.set_link_up(a, b, True)
            self.topology.set_link_factor(a, b, prior)
            remainder = spec.period_s - spec.down_s
            if remainder <= 0 or self.env.now >= end:
                break
            yield self.env.timeout(min(remainder, end - self.env.now))
        self.stats.reverted += 1
        self._record(f"flap_{a}--{b}", start)

    def _apply_crash(self, spec: RankCrash) -> None:
        if self.trainer is not None:
            self.trainer.kill_rank(spec.rank)
        if self.runtime is not None:
            self.runtime.report_crash(spec.rank)
        if self.trainer is None and self.runtime is None:
            raise RuntimeError(
                "RankCrash fired but neither trainer nor runtime is bound"
            )
        self.stats.applied += 1
        self.stats.crashes += 1
        self._record(f"crash_rank{spec.rank}", self.env.now)

    def _apply_restart(self, spec: RankRestart) -> None:
        if self.trainer is None and self.runtime is None:
            raise RuntimeError(
                "RankRestart fired but neither trainer nor runtime is bound"
            )
        if self.trainer is not None:
            # The trainer's restart process drains stale state and then
            # re-admits the rank via runtime.report_restart itself.
            self.trainer.restart_rank(spec.rank)
        elif self.runtime is not None:
            self.runtime.report_restart(spec.rank)
        self.stats.applied += 1
        self.stats.restarts += 1
        self._record(f"restart_rank{spec.rank}", self.env.now)

    # -- helpers ---------------------------------------------------------------
    def _endpoints(self, spec) -> tuple[Device, Device]:
        if self.topology is None:
            raise RuntimeError(
                f"{type(spec).__name__} needs a topology but none was given"
            )
        return Device.parse(spec.link[0]), Device.parse(spec.link[1])

    def _record(self, label: str, start_s: float) -> None:
        if self.timeline is not None:
            self.timeline.record("FAULT", label, start_s, self.env.now)
