"""Setuptools shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` works on machines without the ``wheel`` package (legacy
``setup.py develop`` path) — e.g. air-gapped clusters like the one this
reproduction was developed on.
"""

from setuptools import setup

setup()
