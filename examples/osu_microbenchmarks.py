#!/usr/bin/env python
"""OSU-style microbenchmarks of the simulated MPI libraries (experiment E3).

Prints ping-pong latency and allreduce latency curves for Spectrum MPI
(host-staged GPU buffers) vs MVAPICH2-GDR (GPUDirect RDMA), like the OSU
Micro-Benchmark tables the MVAPICH group publishes.

Usage::

    python examples/osu_microbenchmarks.py [--gpus 24]
"""

import argparse
import math

from repro.cluster import Fabric, build_summit
from repro.mpi import ALL_LIBRARIES, Comm
from repro.mpi.osu import osu_allreduce, osu_bcast, osu_latency
from repro.sim import Environment


def make_comm(gpus, library):
    env = Environment()
    topo = build_summit(env, nodes=max(1, math.ceil(gpus / 6)))
    return Comm(Fabric(topo), topo.gpus()[:gpus], library)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--gpus", type=int, default=24)
    args = parser.parse_args()
    # Includes the NCCL context profile alongside the paper's two MPIs.
    libraries = sorted(ALL_LIBRARIES.items())

    print("# osu_latency — inter-node GPU-to-GPU ping-pong (us)")
    print(f"{'bytes':>10}" + "".join(f"{name:>16}" for name, _ in libraries))
    for size in (8, 256, 4096, 65536, 1 << 20, 16 << 20):
        row = f"{size:>10}"
        for _, lib in libraries:
            comm = make_comm(12, lib)  # 2 nodes; ranks 0 and 6 differ
            res = osu_latency(comm, size, ranks=(0, 6))
            row += f"{res.latency_us:>16.2f}"
        print(row)

    print(f"\n# osu_allreduce — {args.gpus} GPUs (us)")
    print(f"{'bytes':>10}" + "".join(f"{name:>16}" for name, _ in libraries))
    for size in (16, 1024, 65536, 1 << 20, 16 << 20, 64 << 20):
        row = f"{size:>10}"
        for _, lib in libraries:
            res = osu_allreduce(make_comm(args.gpus, lib), size, iterations=3)
            row += f"{res.latency_us:>16.1f}"
        print(row)

    print(f"\n# osu_bcast — {args.gpus} GPUs (us)")
    print(f"{'bytes':>10}" + "".join(f"{name:>16}" for name, _ in libraries))
    for size in (16, 65536, 4 << 20):
        row = f"{size:>10}"
        for _, lib in libraries:
            res = osu_bcast(make_comm(args.gpus, lib), size, iterations=3)
            row += f"{res.latency_us:>16.1f}"
        print(row)

    print("\nThe small-message gap is GPUDirect RDMA avoiding host staging;")
    print("the large-message gap adds the GPU-tuned algorithm selection.")


if __name__ == "__main__":
    main()
