#!/usr/bin/env python
"""Quickstart: simulate DLv3+ distributed training on a Summit slice.

Runs the paper's two configurations — default Horovod on Spectrum MPI and
the tuned Horovod + MVAPICH2-GDR setup — on 24 simulated GPUs (4 Summit
nodes), and prints throughput, scaling efficiency, and where the time in
one iteration goes.

Usage::

    python examples/quickstart.py [--gpus 24] [--iterations 4]
"""

import argparse

from repro.core import (
    measure_training,
    paper_default_config,
    paper_tuned_config,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--gpus", type=int, default=24,
                        help="number of simulated V100s (6 per node)")
    parser.add_argument("--iterations", type=int, default=4,
                        help="training iterations to simulate")
    args = parser.parse_args()

    print(f"Simulating DeepLab-v3+ training on {args.gpus} V100s "
          f"({-(-args.gpus // 6)} Summit nodes)\n")

    for name, config in [
        ("default", paper_default_config()),
        ("tuned", paper_tuned_config()),
    ]:
        m = measure_training(
            args.gpus, config, iterations=args.iterations, jitter_std=0.03
        )
        iters = len(m.stats.iteration_seconds)
        rt = m.runtime_stats
        print(f"[{name}] {m.config.label}")
        print(f"  throughput          {m.images_per_second:9.1f} img/s")
        print(f"  scaling efficiency  {m.scaling_efficiency * 100:9.1f} %")
        print(f"  mean iteration      {m.stats.mean_iteration_seconds * 1e3:9.1f} ms "
              f"(compute-only: {m.stats.compute_iteration_seconds * 1e3:.1f} ms)")
        print(f"  allreduce           {rt.allreduce_seconds / iters * 1e3:9.1f} ms/iter "
              f"over {rt.fused_ops / iters:.0f} fused ops")
        print(f"  negotiation         {rt.negotiation_seconds / iters * 1e3:9.2f} ms/iter "
              f"({rt.cache_hits} response-cache hits)")
        edr = m.link_utilization.get("ib-edr")
        if edr:
            print(f"  EDR rail traffic    {edr['bytes'] / 1e9:9.2f} GB "
                  f"({edr['mean_utilization'] * 100:.1f}% mean utilization)")
        print()

    print("Next steps: examples/summit_scaling.py reproduces the paper's")
    print("headline figure; examples/tune_knobs.py runs the staged tuning")
    print("procedure; examples/train_minideeplab.py trains a real network.")


if __name__ == "__main__":
    main()
