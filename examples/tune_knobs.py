#!/usr/bin/env python
"""Run the paper's staged tuning procedure (experiment E10).

Tunes, in order: MPI library → fusion threshold → cycle time →
hierarchical allreduce, each stage measured on short simulated probe
jobs, then validates the chosen configuration at full 132-GPU scale
against the hand-tuned reference.

Usage::

    python examples/tune_knobs.py [--probe-gpus 24] [--no-validate]
"""

import argparse

from repro.core import StagedTuner, measure_training, paper_tuned_config
from repro.sim.units import MiB


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--probe-gpus", type=int, default=24)
    parser.add_argument("--no-validate", action="store_true",
                        help="skip the 132-GPU validation runs")
    args = parser.parse_args()

    tuner = StagedTuner(
        probe_gpus=args.probe_gpus,
        iterations=3,
        fusion_grid=(1 * MiB, 32 * MiB, 128 * MiB),
        cycle_grid=(1e-3, 5e-3, 25e-3),
    )
    print(f"Staged tuning at probe scale {args.probe_gpus} GPUs...\n")
    outcome = tuner.tune()
    print(outcome.report())

    if not args.no_validate:
        print("\nValidating at 132 GPUs (this simulates two full runs)...")
        pick = measure_training(132, outcome.best, iterations=3, jitter_std=0.03)
        hand = measure_training(132, paper_tuned_config(), iterations=3,
                                jitter_std=0.03)
        print(f"  tuner pick : {pick.scaling_efficiency * 100:5.1f}% efficiency "
              f"({pick.images_per_second:.0f} img/s)")
        print(f"  hand tuned : {hand.scaling_efficiency * 100:5.1f}% efficiency "
              f"({hand.images_per_second:.0f} img/s)")
        print(f"  paper      :  92.0% efficiency at 132 GPUs")


if __name__ == "__main__":
    main()
