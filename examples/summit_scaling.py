#!/usr/bin/env python
"""Reproduce the paper's headline scaling figure (experiment E6).

Sweeps GPU counts up to 132 (22 Summit nodes) for the default and tuned
configurations and prints the comparison table plus the abstract's
headline numbers (92% tuned efficiency, ~1.3× speedup, ~24-point
efficiency gain at 132 GPUs).

The full sweep simulates ~40 training runs and takes a few minutes.

Usage::

    python examples/summit_scaling.py [--max-gpus 132] [--quick]
"""

import argparse

from repro.bench import ascii_chart
from repro.bench.experiments import SCALING_GPUS, e6_scaling_comparison


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--max-gpus", type=int, default=132)
    parser.add_argument("--quick", action="store_true",
                        help="fewer iterations per point (faster, noisier)")
    args = parser.parse_args()

    counts = tuple(g for g in SCALING_GPUS if g <= args.max_gpus)
    result = e6_scaling_comparison(
        gpu_counts=counts,
        iterations=2 if args.quick else 3,
    )
    print(result.table())
    print()
    print(ascii_chart(
        [float(r["GPUs"]) for r in result.rows],
        {
            "default": [r["default img/s"] for r in result.rows],
            "tuned": [r["tuned img/s"] for r in result.rows],
            "ideal": [r["GPUs"] * 6.7 for r in result.rows],
        },
        x_label="GPUs", y_label="img/s",
    ))
    print()
    last = counts[-1]
    m = result.measured
    print(f"At {last} GPUs: tuned reaches {m['tuned_efficiency_at_132']}% "
          f"scaling efficiency vs {m['default_efficiency_at_132']}% default "
          f"— a {m['speedup_at_132']}x training speedup "
          f"(paper: 92% vs ~71%, 1.3x).")


if __name__ == "__main__":
    main()
