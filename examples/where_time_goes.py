#!/usr/bin/env python
"""Deep dive: where one training iteration's time goes, default vs tuned.

Combines the three observability surfaces the library exposes —
iteration breakdown, Horovod-timeline phase totals, and per-link-type
fabric utilization — into one side-by-side diagnosis of the paper's
default-vs-tuned gap at scale.  This is the analysis a practitioner
would run before reaching for the tuning knobs.

Usage::

    python examples/where_time_goes.py [--gpus 132]
"""

import argparse

from repro.core import (
    measure_training,
    paper_default_config,
    paper_tuned_config,
)


def describe(m) -> list[str]:
    iters = len(m.stats.iteration_seconds)
    lines = [f"{m.config.label}"]
    lines.append(
        f"  {m.images_per_second:8.1f} img/s   "
        f"{m.scaling_efficiency * 100:5.1f}% efficiency"
    )
    mean_ms = m.stats.mean_iteration_seconds * 1e3
    compute_ms = m.stats.compute_iteration_seconds * 1e3
    lines.append(
        f"  iteration {mean_ms:8.1f} ms = compute {compute_ms:.1f} ms "
        f"+ exposed {max(0.0, mean_ms - compute_ms):.1f} ms"
    )
    lines.append("  timeline (per iteration):")
    for phase, total in sorted(
        m.timeline.total_by_phase().items(), key=lambda kv: -kv[1]
    ):
        lines.append(f"    {phase:<12} {total / iters * 1e3:9.2f} ms")
    lines.append("  fabric traffic by link type:")
    for name, entry in sorted(
        m.link_utilization.items(), key=lambda kv: -kv[1]["bytes"]
    ):
        if entry["bytes"] == 0:
            continue
        lines.append(
            f"    {name:<16} {entry['bytes'] / 1e9:8.2f} GB over "
            f"{entry['links']:4d} links "
            f"({entry['mean_utilization'] * 100:5.1f}% mean utilization)"
        )
    return lines


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--gpus", type=int, default=132)
    parser.add_argument("--iterations", type=int, default=3)
    args = parser.parse_args()

    for name, cfg in (("DEFAULT", paper_default_config()),
                      ("TUNED", paper_tuned_config())):
        m = measure_training(args.gpus, cfg, iterations=args.iterations,
                             jitter_std=0.0)
        print(f"--- {name} @ {args.gpus} GPUs ---")
        print("\n".join(describe(m)))
        print()

    print("Reading the diagnosis: the default's QUEUE + ALLREDUCE totals")
    print("exceed what backward can hide; the tuned setup drops both via")
    print("GPUDirect RDMA, hierarchy, and a larger fusion buffer.")


if __name__ == "__main__":
    main()
