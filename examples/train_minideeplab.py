#!/usr/bin/env python
"""Train a real segmentation network with real distributed gradients.

This is the mechanistic complement to the throughput simulations: four
replicas of MiniDeepLab (a pure-numpy encoder/ASPP/decoder network) train
on the synthetic VOC-mini shapes dataset.  Every step, each replica's
*actual* gradients travel through the simulated Horovod runtime —
negotiation, fusion packing, ring allreduce over the modeled Summit
fabric — and the averaged result updates all replicas.

Watch for two things: real mIOU climbing, and the replicas staying
bitwise identical (the ring allreduce is deterministic across ranks).

Usage::

    python examples/train_minideeplab.py [--steps 150] [--world 4]
"""

import argparse

import numpy as np

from repro.data import VOCMini
from repro.npnn import DataParallelTrainer, ParallelConfig
from repro.npnn.viz import side_by_side


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=150)
    parser.add_argument("--world", type=int, default=4,
                        help="number of data-parallel replicas")
    parser.add_argument("--size", type=int, default=24,
                        help="image resolution of the synthetic dataset")
    args = parser.parse_args()

    dataset = VOCMini(size=args.size, num_classes=4, seed=3)
    trainer = DataParallelTrainer(
        dataset,
        ParallelConfig(world=args.world, per_replica_batch=4, width=8,
                       lr=0.08),
    )
    val = list(range(2000, 2048))
    print(f"MiniDeepLab: {trainer.replicas[0].num_params:,} params, "
          f"{args.world} replicas, global batch "
          f"{trainer.config.global_batch}")
    print(f"initial mIOU: {trainer.evaluate(val):.3f}\n")

    chunk = max(1, args.steps // 6)
    done = 0
    while done < args.steps:
        trainer.train(min(chunk, args.steps - done))
        done = len(trainer.history)
        last = trainer.history[-1]
        print(f"step {done:4d}  loss {last.mean_loss:6.3f}  "
              f"mIOU {trainer.evaluate(val):5.3f}  "
              f"allreduce {last.allreduce_sim_seconds * 1e3:5.2f} ms(sim)  "
              f"in-sync: {trainer.replicas_in_sync()}")

    assert trainer.replicas_in_sync(), "replicas diverged!"
    print("\nreplicas remained bitwise identical throughout — the")
    print("distributed gradient path computes exactly synchronous SGD.")

    # Show one validation sample: ground truth vs prediction.
    image, mask = dataset.sample(val[0])
    x = np.ascontiguousarray(
        image[None].transpose(0, 3, 1, 2)
    ).astype(np.float64)
    pred = trainer.replicas[0].predict(x)[0]
    print("\n" + side_by_side(mask, pred))


if __name__ == "__main__":
    main()
