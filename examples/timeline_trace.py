#!/usr/bin/env python
"""Dump a Horovod-timeline Chrome trace of one simulated training run.

The paper's tuning methodology leans on Horovod's timeline
(``HOROVOD_TIMELINE``) to see where iteration time goes — negotiation,
queueing, fusion memcpys, the allreduce itself.  This example runs a few
iterations and writes the same Chrome-trace JSON, loadable at
``chrome://tracing`` or https://ui.perfetto.dev.

Usage::

    python examples/timeline_trace.py [--gpus 24] [--out horovod_timeline.json]
"""

import argparse

from repro.core import measure_training, paper_default_config, paper_tuned_config


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--gpus", type=int, default=24)
    parser.add_argument("--config", choices=("default", "tuned"),
                        default="default")
    parser.add_argument("--out", default="horovod_timeline.json")
    args = parser.parse_args()

    config = (paper_default_config() if args.config == "default"
              else paper_tuned_config())
    m = measure_training(args.gpus, config, iterations=3, jitter_std=0.0)

    totals = m.timeline.total_by_phase()
    iters = len(m.stats.iteration_seconds)
    print(f"{m.config.label} on {args.gpus} GPUs "
          f"({m.images_per_second:.1f} img/s)\n")
    print(f"{'phase':<12} {'total (ms)':>12} {'per iter (ms)':>15} {'spans':>7}")
    for phase, seconds in sorted(totals.items(), key=lambda kv: -kv[1]):
        spans = len(m.timeline.spans(phase))
        print(f"{phase:<12} {seconds * 1e3:>12.1f} "
              f"{seconds / iters * 1e3:>15.2f} {spans:>7}")

    with open(args.out, "w") as fh:
        fh.write(m.timeline.to_chrome_trace())
    print(f"\nwrote {len(m.timeline.events)} spans to {args.out} "
          f"(open in chrome://tracing)")


if __name__ == "__main__":
    main()
