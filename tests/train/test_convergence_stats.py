"""Tests for the convergence model and run statistics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.train import MIOU_MODEL, TrainStats
from repro.train.convergence import ConvergenceModel


class TestConvergenceModel:
    def test_paper_anchor_distributed(self):
        """16 GPUs x bs 8 = B 128 at the standard 45.4-epoch recipe."""
        miou = MIOU_MODEL.miou(45.4, 128)
        assert miou == pytest.approx(80.8, abs=0.5)

    def test_paper_anchor_single(self):
        assert MIOU_MODEL.miou(45.4, 16) == pytest.approx(81.6, abs=0.4)

    def test_more_epochs_better(self):
        m = ConvergenceModel()
        assert m.miou(60, 16, seed=None) > m.miou(20, 16, seed=None)

    def test_larger_batch_worse_at_fixed_epochs(self):
        m = ConvergenceModel()
        assert m.miou(45, 512, seed=None) < m.miou(45, 16, seed=None)

    def test_warmup_mitigates_large_batch(self):
        m = ConvergenceModel()
        with_rule = m.miou(45, 256, lr_scaling=True, warmup=True, seed=None)
        without = m.miou(45, 256, lr_scaling=True, warmup=False, seed=None)
        assert with_rule > without

    def test_no_penalty_at_reference_batch_or_below(self):
        m = ConvergenceModel()
        assert m.miou(45, 16, seed=None) == m.miou(45, 8, seed=None)

    def test_seeded_noise_reproducible_and_bounded(self):
        m = ConvergenceModel()
        a = m.miou(45, 128, seed=7)
        b = m.miou(45, 128, seed=7)
        assert a == b
        clean = m.miou(45, 128, seed=None)
        assert abs(a - clean) < 4 * m.noise_pt

    def test_never_negative(self):
        assert ConvergenceModel().miou(0, 10**6, warmup=False, seed=None) >= 0

    def test_validation(self):
        with pytest.raises(ValueError):
            MIOU_MODEL.miou(-1, 16)
        with pytest.raises(ValueError):
            MIOU_MODEL.miou(10, 0)

    @given(st.floats(0, 200), st.integers(1, 4096))
    def test_bounded_by_asymptote(self, epochs, batch):
        m = ConvergenceModel()
        assert m.miou(epochs, batch, seed=None) <= m.asymptote


class TestTrainStats:
    def make(self, iters, world=4, batch=8, warmup=1):
        return TrainStats(
            world_size=world,
            per_gpu_batch=batch,
            iteration_seconds=iters,
            warmup_iterations=warmup,
            compute_iteration_seconds=1.0,
        )

    def test_global_batch(self):
        assert self.make([1.0, 1.0]).global_batch == 32

    def test_warmup_excluded(self):
        s = self.make([9.0, 1.0, 1.0])
        assert s.mean_iteration_seconds == pytest.approx(1.0)

    def test_images_per_second(self):
        s = self.make([1.0, 2.0])  # steady = [2.0]
        assert s.images_per_second == pytest.approx(16.0)

    def test_efficiency_and_speedup(self):
        single = TrainStats(1, 8, [0.5, 1.0], compute_iteration_seconds=1.0)
        multi = self.make([1.0, 1.25])  # 4 gpus, steady 1.25 -> 25.6 img/s
        assert multi.speedup_over(single) == pytest.approx(3.2)
        assert multi.scaling_efficiency(single) == pytest.approx(0.8)

    def test_comm_overhead_fraction(self):
        s = self.make([1.0, 1.25])
        assert s.comm_overhead_fraction == pytest.approx(0.2)
        s_fast = self.make([1.0, 0.9])
        assert s_fast.comm_overhead_fraction == 0.0

    def test_no_steady_iterations_error(self):
        s = self.make([1.0])
        with pytest.raises(ValueError):
            s.mean_iteration_seconds

    def test_validation(self):
        with pytest.raises(ValueError):
            TrainStats(0, 8)
        with pytest.raises(ValueError):
            TrainStats(1, 8, warmup_iterations=-1)
        s = TrainStats(1, 8, iteration_seconds=[1.0], warmup_iterations=0)
        with pytest.raises(ValueError):
            s.comm_overhead_fraction  # compute_iteration_seconds unset
