"""Tests for LR schedules (poly decay + linear-scaling warmup)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.train import LRSchedule, linear_scaled_lr, poly_schedule


class TestPoly:
    def test_starts_at_base(self):
        s = poly_schedule(base_lr=0.007, max_steps=100)
        assert s.lr(0) == pytest.approx(0.007)

    def test_decays_to_near_zero(self):
        s = poly_schedule(base_lr=0.007, max_steps=100)
        assert s.lr(99) < 1e-3

    def test_power_09(self):
        s = poly_schedule(base_lr=1.0, max_steps=10, power=0.9)
        assert s.lr(5) == pytest.approx(0.5 ** 0.9)

    def test_clamps_past_max(self):
        s = poly_schedule(max_steps=10)
        assert s.lr(500) == s.lr(9)

    def test_monotone_decreasing(self):
        s = poly_schedule(base_lr=0.01, max_steps=50)
        lrs = [s.lr(i) for i in range(50)]
        assert all(a >= b for a, b in zip(lrs, lrs[1:]))

    def test_validation(self):
        with pytest.raises(ValueError):
            LRSchedule(base_lr=0, max_steps=10)
        with pytest.raises(ValueError):
            LRSchedule(base_lr=0.1, max_steps=0)
        with pytest.raises(ValueError):
            LRSchedule(base_lr=0.1, max_steps=10, warmup_steps=10)
        with pytest.raises(ValueError):
            poly_schedule().lr(-1)


class TestLinearScaling:
    def test_single_worker_is_plain_poly(self):
        s = linear_scaled_lr(0.007, world_size=1, max_steps=100)
        p = poly_schedule(0.007, max_steps=100)
        assert s.warmup_steps == 0
        assert s.lr(0) == p.lr(0)
        assert s.lr(50) == p.lr(50)

    def test_peak_lr_scaled_by_world(self):
        s = linear_scaled_lr(0.007, world_size=8, max_steps=1000,
                             steps_per_epoch=50)
        assert s.base_lr == pytest.approx(0.056)

    def test_warmup_ramps_from_base(self):
        s = linear_scaled_lr(0.01, world_size=4, max_steps=1000,
                             warmup_epochs=2, steps_per_epoch=100)
        assert s.warmup_steps == 200
        assert s.lr(0) < s.lr(100) < s.lr(199)
        assert s.lr(199) == pytest.approx(0.04, rel=0.01)

    def test_warmup_capped_below_max_steps(self):
        s = linear_scaled_lr(0.01, world_size=4, max_steps=50,
                             warmup_epochs=10, steps_per_epoch=100)
        assert s.warmup_steps < 50

    def test_invalid_world(self):
        with pytest.raises(ValueError):
            linear_scaled_lr(0.01, world_size=0, max_steps=10)

    @given(st.integers(1, 64), st.integers(10, 500))
    def test_lr_always_positive_and_bounded(self, world, max_steps):
        s = linear_scaled_lr(0.007, world_size=world, max_steps=max_steps)
        for step in (0, max_steps // 2, max_steps - 1):
            lr = s.lr(step)
            assert 0 < lr <= 0.007 * world + 1e-12
