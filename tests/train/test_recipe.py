"""Tests for the training recipe (time-to-train + accuracy projection)."""

import pytest

from repro.train import VOCSegmentationRecipe


@pytest.fixture
def recipe():
    return VOCSegmentationRecipe()


def test_epoch_budget_matches_standard_recipe(recipe):
    assert recipe.epoch_budget == pytest.approx(45.36, abs=0.01)
    assert recipe.total_images == 480_000


def test_steps_shrink_linearly_with_gpus(recipe):
    assert recipe.steps_at(1) == 60_000  # batch 8 per GPU
    assert recipe.steps_at(2) == 30_000
    assert recipe.steps_at(132) == pytest.approx(455, abs=1)


def test_constant_epoch_budget_across_scales(recipe):
    for gpus in (1, 6, 48, 132):
        out = recipe.outcome(gpus, images_per_second=100.0, seed=None)
        assert out.epochs == pytest.approx(recipe.epoch_budget, rel=0.01)


def test_wall_hours_inverse_in_throughput(recipe):
    slow = recipe.outcome(24, images_per_second=100.0)
    fast = recipe.outcome(24, images_per_second=200.0)
    assert slow.wall_hours == pytest.approx(2 * fast.wall_hours)


def test_single_v100_takes_about_20_hours(recipe):
    out = recipe.outcome(1, images_per_second=6.7)
    assert out.wall_hours == pytest.approx(19.9, abs=0.2)


def test_predicted_miou_declines_with_batch(recipe):
    small = recipe.outcome(2, images_per_second=10, seed=None)
    big = recipe.outcome(132, images_per_second=800, seed=None)
    assert big.predicted_miou < small.predicted_miou
    assert big.predicted_miou > 77


def test_validation(recipe):
    with pytest.raises(ValueError):
        recipe.steps_at(0)
    with pytest.raises(ValueError):
        recipe.outcome(4, images_per_second=0)
    with pytest.raises(ValueError):
        VOCSegmentationRecipe(per_gpu_batch=0)
    with pytest.raises(ValueError):
        VOCSegmentationRecipe(reference_steps=0)
