"""Integration tests for the distributed trainer over the simulation."""

import pytest

from repro.horovod import HorovodConfig, HorovodRuntime
from repro.models import ModelCost, build_deeplabv3plus
from repro.train import DistributedTrainer, TrainJob
from repro.train.trainer import TrainJob as TJ

from tests.mpi.conftest import make_comm


@pytest.fixture(scope="module")
def profile():
    return ModelCost(build_deeplabv3plus()).profile(8)


def run_job(profile, p=6, job=None, config=None, negotiation="analytic"):
    env, comm = make_comm(p)
    runtime = HorovodRuntime(comm, config or HorovodConfig.default(),
                             negotiation=negotiation)
    trainer = DistributedTrainer(runtime, profile,
                                 job or TrainJob(iterations=3))
    return trainer.run()


class TestTrainJob:
    def test_validation(self):
        with pytest.raises(ValueError):
            TJ(iterations=0)
        with pytest.raises(ValueError):
            TJ(per_gpu_batch=0)
        with pytest.raises(ValueError):
            TJ(iterations=2, warmup_iterations=2)
        with pytest.raises(ValueError):
            TJ(jitter_std=-0.1)


class TestDistributedTrainer:
    def test_batch_mismatch_rejected(self, profile):
        env, comm = make_comm(2)
        runtime = HorovodRuntime(comm, HorovodConfig.default())
        with pytest.raises(ValueError, match="batch"):
            DistributedTrainer(runtime, profile, TrainJob(per_gpu_batch=4))

    def test_iteration_count_and_positive_times(self, profile):
        stats = run_job(profile, job=TrainJob(iterations=3))
        assert len(stats.iteration_seconds) == 3
        assert all(t > 0 for t in stats.iteration_seconds)

    def test_all_gradients_reduced_every_iteration(self, profile):
        stats = run_job(profile, p=2, job=TrainJob(iterations=2))
        tensors_per_iter = len(profile.emission_schedule)
        assert stats.runtime.tensors_reduced == 2 * tensors_per_iter
        assert stats.runtime.bytes_reduced == 2 * sum(
            g.nbytes for _, g in profile.emission_schedule
        )

    def test_iteration_not_faster_than_compute(self, profile):
        stats = run_job(profile, p=6)
        assert stats.mean_iteration_seconds >= profile.compute_s

    def test_input_pipeline_stall_accounted(self, profile):
        """A pathologically slow pipeline dominates the iteration."""
        from repro.data import InputPipelineModel

        slow = InputPipelineModel(seconds_per_image=0.5)  # 4 s per batch!
        stats = run_job(
            profile, p=2,
            job=TrainJob(iterations=2, pipeline=slow),
        )
        assert stats.mean_iteration_seconds > 3.0
        assert stats.input_stall_seconds > 0

    def test_no_pipeline_means_no_stall(self, profile):
        stats = run_job(profile, p=2, job=TrainJob(iterations=2, pipeline=None))
        assert stats.input_stall_seconds == 0.0

    def test_messages_vs_analytic_negotiation_close(self, profile):
        """The analytic control-plane model must track the fully simulated
        one within a few percent of iteration time."""
        a = run_job(profile, p=6, negotiation="analytic")
        m = run_job(profile, p=6, negotiation="messages")
        assert a.mean_iteration_seconds == pytest.approx(
            m.mean_iteration_seconds, rel=0.03
        )

    def test_deterministic_without_jitter(self, profile):
        s1 = run_job(profile, p=3)
        s2 = run_job(profile, p=3)
        assert s1.iteration_seconds == s2.iteration_seconds

    def test_jitter_slows_multi_rank_iterations(self, profile):
        base = run_job(profile, p=6, job=TrainJob(iterations=3))
        jittered = run_job(
            profile, p=6, job=TrainJob(iterations=3, jitter_std=0.05)
        )
        # Synchronous SGD waits for the slowest rank each iteration.
        assert (
            jittered.mean_iteration_seconds > base.mean_iteration_seconds
        )

    def test_compression_reduces_wire_bytes_effect(self, profile):
        plain = run_job(profile, p=6)
        fp16 = run_job(
            profile, p=6,
            config=HorovodConfig.default().with_(compression="fp16"),
        )
        assert fp16.runtime.compression_seconds > 0
        # Same tensors reduced either way.
        assert fp16.runtime.tensors_reduced == plain.runtime.tensors_reduced
