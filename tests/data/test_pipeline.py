"""Tests for the input-pipeline timing model."""

import pytest

from repro.data import InputPipelineModel
from repro.data.pipeline import PipelineClock


def test_batch_seconds():
    m = InputPipelineModel(seconds_per_image=1e-3, h2d_seconds_per_image=1e-4)
    assert m.batch_seconds(8) == pytest.approx(8 * 1.1e-3)


def test_validation():
    with pytest.raises(ValueError):
        InputPipelineModel(seconds_per_image=-1)
    with pytest.raises(ValueError):
        InputPipelineModel(prefetch_batches=0)
    with pytest.raises(ValueError):
        InputPipelineModel().batch_seconds(0)


def test_clock_first_batch_waits_production_time():
    m = InputPipelineModel(seconds_per_image=1e-3, h2d_seconds_per_image=0,
                           prefetch_batches=2)
    clock = PipelineClock(m, batch_size=10)  # batch takes 10 ms
    assert clock.wait(0.0) == pytest.approx(0.010)


def test_clock_fast_consumer_stalls_every_batch():
    """Consumer faster than producer: steady stall = production - step."""
    m = InputPipelineModel(seconds_per_image=1e-3, h2d_seconds_per_image=0,
                           prefetch_batches=2)
    clock = PipelineClock(m, batch_size=10)
    now = 0.0
    stalls = []
    for _ in range(6):
        stall = clock.wait(now)
        stalls.append(stall)
        now += stall + 0.004  # 4 ms step < 10 ms production
    # After warm-up, the consumer is production-bound: ~6 ms stall/step.
    assert stalls[-1] == pytest.approx(0.006, abs=1e-9)


def test_clock_slow_consumer_never_stalls():
    m = InputPipelineModel(seconds_per_image=1e-3, h2d_seconds_per_image=0,
                           prefetch_batches=2)
    clock = PipelineClock(m, batch_size=10)
    now = 0.0
    total = 0.0
    for i in range(6):
        stall = clock.wait(now)
        total += stall
        now += stall + 0.050  # 50 ms step >> 10 ms production
    # Only the initial fill can stall.
    assert total == pytest.approx(0.010)


def test_prefetch_bounds_work_ahead():
    """With depth d, at most d batches are ready ahead of consumption."""
    m = InputPipelineModel(seconds_per_image=1e-3, h2d_seconds_per_image=0,
                           prefetch_batches=3)
    clock = PipelineClock(m, batch_size=10)
    # Consume nothing for a long time, then drain: only 3 are instantly
    # available; the 4th requires new production time.
    now = 10.0
    assert clock.wait(now) == 0.0
    assert clock.wait(now) == 0.0
    assert clock.wait(now) == 0.0
    fourth = clock.wait(now)
    assert fourth > 0.0
