"""Tests for dataset statistics and the VOC-mini generator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import VOC2012_AUG, DatasetStats, VOCMini


class TestDatasetStats:
    def test_voc_reference_numbers(self):
        assert VOC2012_AUG.train_images == 10_582
        assert VOC2012_AUG.val_images == 1_449
        assert VOC2012_AUG.num_classes == 21
        assert VOC2012_AUG.crop_size == 513

    def test_steps_per_epoch(self):
        assert VOC2012_AUG.steps_per_epoch(16) == 662  # ceil(10582/16)
        assert VOC2012_AUG.steps_per_epoch(10_582) == 1

    def test_standard_recipe_epochs(self):
        """30k steps @ global batch 16 = the standard ~45-epoch recipe."""
        assert VOC2012_AUG.epochs_for_steps(30_000, 16) == pytest.approx(
            45.36, abs=0.01
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            VOC2012_AUG.steps_per_epoch(0)
        with pytest.raises(ValueError):
            VOC2012_AUG.epochs_for_steps(-1, 16)

    @given(st.integers(1, 4096))
    def test_steps_epochs_inverse(self, batch):
        steps = VOC2012_AUG.steps_per_epoch(batch)
        assert VOC2012_AUG.epochs_for_steps(steps, batch) >= 1.0
        assert VOC2012_AUG.epochs_for_steps(steps - 1, batch) < 1.0


class TestVOCMini:
    def test_sample_shapes_and_types(self):
        ds = VOCMini(size=24, num_classes=4)
        image, mask = ds.sample(0)
        assert image.shape == (24, 24, 3) and image.dtype == np.float32
        assert mask.shape == (24, 24) and mask.dtype == np.int64
        assert image.min() >= 0.0 and image.max() <= 1.0

    def test_mask_classes_in_range(self):
        ds = VOCMini(size=24, num_classes=4)
        for i in range(10):
            _, mask = ds.sample(i)
            assert mask.min() >= 0 and mask.max() < 4

    def test_deterministic_per_index(self):
        a = VOCMini(size=16, seed=3).sample(7)
        b = VOCMini(size=16, seed=3).sample(7)
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])

    def test_different_indices_differ(self):
        ds = VOCMini(size=16)
        assert not np.array_equal(ds.sample(0)[0], ds.sample(1)[0])

    def test_foreground_present_and_background_majority_overall(self):
        ds = VOCMini(size=32, num_classes=4, seed=1)
        fg = bg = 0
        for i in range(20):
            _, mask = ds.sample(i)
            fg += (mask > 0).sum()
            bg += (mask == 0).sum()
        assert fg > 0
        assert bg > fg * 0.3  # background is a substantial class

    def test_classes_have_distinct_colors(self):
        """Mean color per class must be separable (learnable mapping)."""
        ds = VOCMini(size=32, num_classes=4, seed=0)
        sums = np.zeros((4, 3))
        counts = np.zeros(4)
        for i in range(30):
            img, mask = ds.sample(i)
            for c in range(4):
                sel = mask == c
                sums[c] += img[sel].sum(axis=0)
                counts[c] += sel.sum()
        means = sums / counts[:, None]
        for a in range(4):
            for b in range(a + 1, 4):
                assert np.linalg.norm(means[a] - means[b]) > 0.15

    def test_batch_stacks(self):
        ds = VOCMini(size=16)
        images, masks = ds.batch([0, 1, 2])
        assert images.shape == (3, 16, 16, 3)
        assert masks.shape == (3, 16, 16)

    def test_shard_indices_partition(self):
        ds = VOCMini()
        world = 4
        shards = [ds.shard_indices(22, r, world) for r in range(world)]
        combined = sorted(i for s in shards for i in s)
        assert combined == list(range(22))
        assert all(
            not (set(a) & set(b)) for i, a in enumerate(shards) for b in shards[i + 1:]
        )

    def test_shard_validation(self):
        with pytest.raises(ValueError):
            VOCMini().shard_indices(10, 4, 4)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            VOCMini(size=4)
        with pytest.raises(ValueError):
            VOCMini(num_classes=1)
        with pytest.raises(ValueError):
            VOCMini(max_shapes=0)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 500))
    def test_any_sample_valid(self, index):
        ds = VOCMini(size=16, num_classes=5, seed=9)
        image, mask = ds.sample(index)
        assert np.isfinite(image).all()
        assert set(np.unique(mask)) <= set(range(5))
