"""Correlation context: bind/unwind semantics and header hygiene."""

import json

from repro.obs import (
    CONTEXT_HEADER,
    CONTEXT_KEYS,
    bind,
    context_header,
    current_context,
    decode_context,
    new_request_id,
)


def test_header_name_and_keys_are_stable():
    assert CONTEXT_HEADER == "X-Repro-Context"
    assert set(CONTEXT_KEYS) == {"job_id", "point_key", "worker_id",
                                 "request_id"}


def test_bind_merges_and_unwinds():
    assert current_context() == {}
    with bind(job_id="j1") as outer:
        assert outer == {"job_id": "j1"}
        with bind(worker_id="w1", job_id="j2") as inner:
            assert inner == {"job_id": "j2", "worker_id": "w1"}
            assert current_context() == inner
        assert current_context() == {"job_id": "j1"}
    assert current_context() == {}


def test_bind_ignores_unknown_keys_and_none_values():
    with bind(job_id=None, tenant="alice", shell="rm -rf /"):
        assert current_context() == {}


def test_bind_stringifies_and_truncates_values():
    with bind(job_id=42, point_key="x" * 500):
        ctx = current_context()
    assert ctx["job_id"] == "42"
    assert len(ctx["point_key"]) == 200


def test_header_round_trip():
    assert context_header() is None  # nothing bound -> no header at all
    with bind(job_id="j1", request_id="r1"):
        header = context_header()
    assert header == '{"job_id":"j1","request_id":"r1"}'
    assert decode_context(header) == {"job_id": "j1", "request_id": "r1"}


def test_decode_is_defensive():
    assert decode_context(None) == {}
    assert decode_context("") == {}
    assert decode_context("not json{") == {}
    assert decode_context('["a", "list"]') == {}
    assert decode_context('{"job_id": {"nested": 1}}') == {}
    assert decode_context('{"evil_key": "x", "job_id": "ok"}') == \
        {"job_id": "ok"}
    long = json.dumps({"job_id": "y" * 500})
    assert len(decode_context(long)["job_id"]) == 200


def test_new_request_id_is_short_hex_and_unique():
    ids = {new_request_id() for _ in range(64)}
    assert len(ids) == 64
    for rid in ids:
        assert len(rid) == 12
        int(rid, 16)  # hex or raise
