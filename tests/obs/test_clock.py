"""The injectable wall + monotonic clock pair."""

from repro.obs import Clock, ManualClock, SYSTEM_CLOCK


def test_system_clock_planes_advance():
    wall0, mono0 = SYSTEM_CLOCK.wall(), SYSTEM_CLOCK.mono()
    assert SYSTEM_CLOCK.wall() >= wall0
    assert SYSTEM_CLOCK.mono() >= mono0
    assert wall0 > 1_500_000_000  # epoch seconds, not monotonic seconds


def test_manual_clock_is_frozen_until_advanced():
    clock = ManualClock(wall_s=100.0, mono_s=5.0)
    assert clock.wall() == 100.0 and clock.mono() == 5.0
    clock.advance(2.5)
    assert clock.wall() == 102.5 and clock.mono() == 7.5


def test_manual_clock_planes_can_skew():
    clock = ManualClock(wall_s=0.0, mono_s=0.0)
    clock.advance(wall_s=10.0, mono_s=1.0)  # NTP slew: wall jumps, mono crawls
    assert clock.wall() == 10.0 and clock.mono() == 1.0
    clock.advance(wall_s=-5.0, mono_s=0.0)  # wall may even step backwards
    assert clock.wall() == 5.0 and clock.mono() == 1.0


def test_clock_accepts_injected_sources():
    clock = Clock(wall=lambda: 1.0, mono=lambda: 2.0)
    assert clock.wall() == 1.0 and clock.mono() == 2.0
