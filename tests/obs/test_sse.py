"""SSE framing and the reconnecting follower, without sockets."""

import json
import urllib.error

import pytest

from repro.obs.sse import (
    SSEvent,
    follow,
    format_comment,
    format_event,
    parse_sse,
)


def frames_to_lines(*frames: bytes):
    return b"".join(frames).decode("utf-8").split("\n")


def test_format_event_field_order_and_framing():
    frame = format_event({"b": 2, "a": 1}, id=7, event="state",
                         retry_ms=1500)
    assert frame == (b"retry: 1500\nid: 7\nevent: state\n"
                     b'data: {"a":1,"b":2}\n\n')


def test_format_comment_is_not_an_event():
    assert format_comment("tick") == b": tick\n\n"
    assert parse_sse(frames_to_lines(format_comment("tick"))) == []


def test_parse_round_trip_with_ids_and_retry():
    lines = frames_to_lines(
        format_event({"n": 1}, id=1, event="state", retry_ms=2000),
        format_comment(),
        format_event({"n": 2}, id=2, event="state"),
        format_event("bye", event="end"),
    )
    events = parse_sse(lines)
    assert [e.event for e in events] == ["state", "state", "end"]
    assert events[0].retry_ms == 2000 and events[0].id == "1"
    assert events[0].json() == {"n": 1}
    assert events[1].comments == ["heartbeat"]  # collected onto the next
    assert events[2].data == "bye" and events[2].id is None


def test_multiline_data_is_byte_lossless():
    envelope = json.dumps({"results": [1, 2], "meta": {"variant": "quick"}},
                          indent=1).encode("utf-8")
    assert b"\n" in envelope
    events = parse_sse(frames_to_lines(format_event(envelope,
                                                    event="result")))
    assert events[0].data.encode("utf-8") == envelope


def test_parse_tolerates_crlf_and_missing_trailing_blank():
    events = parse_sse(["event: state\r\n", "data: x\r\n", "\r\n",
                        "data: tail-no-blank"])
    assert [(e.event, e.data) for e in events] == [("state", "x"),
                                                   ("message",
                                                    "tail-no-blank")]


def test_ssevent_json_is_defensive():
    assert SSEvent(data="not json").json() == {}
    assert SSEvent(data="[1,2]").json() == {}
    assert SSEvent(data='{"ok":1}').json() == {"ok": 1}


class FakeResponse:
    """A streaming body: iterable of raw lines, optional mid-stream drop."""

    def __init__(self, frames: bytes, error: Exception | None = None):
        self._lines = [line + b"\n" for line in frames.split(b"\n")]
        self._error = error

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def __iter__(self):
        yield from self._lines
        if self._error is not None:
            raise self._error


class FakeOpener:
    """Scripted ``urlopen``: pops one response per connection attempt."""

    def __init__(self, responses):
        self._responses = list(responses)
        self.requests = []

    def __call__(self, request, timeout=None):
        self.requests.append(request)
        response = self._responses.pop(0)
        if isinstance(response, Exception):
            raise response
        return response


def test_follow_terminates_on_end_event():
    opener = FakeOpener([FakeResponse(
        format_event({"n": 1}, id=1, event="state")
        + format_event({}, id=2, event="end"))])
    events = list(follow("http://x/v1/jobs/j/events", token="t",
                         opener=opener))
    assert [e.event for e in events] == ["state", "end"]
    headers = opener.requests[0].headers
    assert headers["Authorization"] == "Bearer t"
    assert headers["Accept"] == "text/event-stream"


def test_follow_reconnects_with_last_event_id():
    dropped = FakeResponse(format_event({"n": 1}, id=41, event="state"),
                           error=ConnectionResetError("mid-stream"))
    resumed = FakeResponse(format_event({"n": 2}, id=42, event="state")
                           + format_event({}, id=43, event="end"))
    opener = FakeOpener([dropped, resumed])
    slept = []
    events = list(follow("http://x/v1/jobs/j/events", opener=opener,
                         sleep=slept.append))
    assert [e.id for e in events] == ["41", "42", "43"]
    assert "Last-event-id" not in opener.requests[0].headers
    assert opener.requests[1].headers["Last-event-id"] == "41"
    assert slept == [2.0]  # default retry: 2000ms between attempts


def test_follow_honours_server_retry_hint():
    dropped = FakeResponse(format_event({}, id=1, event="state",
                                        retry_ms=50),
                           error=OSError("gone"))
    opener = FakeOpener([dropped,
                         FakeResponse(format_event({}, id=2, event="end"))])
    slept = []
    list(follow("http://x/s", opener=opener, sleep=slept.append))
    assert slept == [0.05]


def test_follow_gives_up_after_max_reconnects():
    opener = FakeOpener([OSError("refused")] * 3)
    with pytest.raises(OSError):
        list(follow("http://x/s", opener=opener, max_reconnects=2,
                    sleep=lambda _s: None))
    assert len(opener.requests) == 3


def test_follow_reraises_http_errors_for_fallback():
    denied = urllib.error.HTTPError("http://x/s", 404, "nope", {}, None)
    opener = FakeOpener([denied])
    with pytest.raises(urllib.error.HTTPError):
        list(follow("http://x/s", opener=opener))
    assert len(opener.requests) == 1  # an answer is an answer: no retry
