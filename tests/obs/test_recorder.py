"""Flight recorder: ring bounds, cursors, blocking waits, dumps."""

import json
import threading

from repro.obs import FlightRecorder


def add(recorder, event, **fields):
    record = {"event": event, **fields}
    recorder.add(record)
    return record


def test_seq_is_monotonic_and_ring_is_bounded():
    recorder = FlightRecorder(capacity=3)
    for i in range(5):
        add(recorder, f"e{i}")
    events = recorder.since(0)
    assert [r["event"] for r in events] == ["e2", "e3", "e4"]
    assert [r["seq"] for r in events] == [3, 4, 5]
    assert recorder.last_seq == 5


def test_since_cursor_limit_and_match():
    recorder = FlightRecorder()
    for i in range(6):
        add(recorder, f"e{i}", even=(i % 2 == 0))
    assert [r["seq"] for r in recorder.since(4)] == [5, 6]
    assert [r["seq"] for r in recorder.since(0, limit=2)] == [1, 2]
    evens = recorder.since(0, match=lambda r: r["even"])
    assert [r["event"] for r in evens] == ["e0", "e2", "e4"]


def test_since_returns_copies():
    recorder = FlightRecorder()
    add(recorder, "original")
    recorder.since(0)[0]["event"] = "mutated"
    assert recorder.since(0)[0]["event"] == "original"


def test_wait_since_returns_immediately_when_fresh():
    recorder = FlightRecorder()
    add(recorder, "already_there")
    got = recorder.wait_since(0, timeout_s=5.0)
    assert [r["event"] for r in got] == ["already_there"]


def test_wait_since_times_out_empty():
    recorder = FlightRecorder()
    assert recorder.wait_since(0, timeout_s=0.05) == []


def test_wait_since_wakes_on_add():
    recorder = FlightRecorder()
    got = []

    def waiter():
        got.extend(recorder.wait_since(0, timeout_s=5.0))

    thread = threading.Thread(target=waiter)
    thread.start()
    add(recorder, "late")
    thread.join(timeout=5.0)
    assert [r["event"] for r in got] == ["late"]


def test_wait_since_match_skips_rejected_events_permanently():
    recorder = FlightRecorder()
    add(recorder, "noise")
    add(recorder, "signal")
    got = recorder.wait_since(0, timeout_s=1.0,
                              match=lambda r: r["event"] == "signal")
    assert [r["event"] for r in got] == ["signal"]
    # The rejected "noise" must not satisfy (or hot-spin) a second wait.
    assert recorder.wait_since(got[-1]["seq"], timeout_s=0.05,
                               match=lambda r: r["event"] == "signal") == []


def test_dump_is_header_plus_ring(tmp_path):
    recorder = FlightRecorder()
    add(recorder, "a")
    add(recorder, "b")
    path = recorder.dump(tmp_path / "dump.jsonl", reason="unit",
                         clock=lambda: 7.0)
    lines = [json.loads(line) for line in
             path.read_text().strip().split("\n")]
    assert lines[0]["event"] == "flight_recorder_dump"
    assert lines[0]["reason"] == "unit" and lines[0]["events"] == 2
    assert lines[0]["ts"] == 7.0
    assert [r["event"] for r in lines[1:]] == ["a", "b"]
    assert recorder.dumps == 1
    assert not (tmp_path / "dump.jsonl.tmp").exists()  # renamed, not torn
