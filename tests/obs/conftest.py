"""Shared obs-test hygiene: the emitter is a process-wide singleton
configured from the environment, so every test here gets a fresh one
and leaves no ``REPRO_OBS*`` variables behind."""

import os

import pytest

from repro.obs import reset_emitter


@pytest.fixture(autouse=True)
def fresh_emitter():
    saved = {key: os.environ.pop(key, None)
             for key in ("REPRO_OBS", "REPRO_OBS_DIR")}
    reset_emitter()
    try:
        yield
    finally:
        reset_emitter()
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
