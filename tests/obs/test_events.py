"""The structured event emitter: record shape, sinks, kill switch."""

import json
import os

from repro.obs import (
    OBS_SCHEMA,
    EventEmitter,
    bind,
    configure,
    emit,
    emitter,
    reset_emitter,
)


def test_record_shape_and_context_stamp():
    em = EventEmitter(clock=lambda: 123.5)
    with bind(job_id="j1", request_id="r1"):
        record = em.emit("job_leased", worker="svc:0")
    assert record == {
        "schema": OBS_SCHEMA, "seq": 1, "ts": 123.5, "level": "info",
        "event": "job_leased", "pid": os.getpid(),
        "ctx": {"job_id": "j1", "request_id": "r1"}, "worker": "svc:0",
    }


def test_fields_cannot_shadow_the_envelope():
    em = EventEmitter()
    record = em.emit("x", ts=-1, ctx="spoof", pid=0, schema=99)
    assert record["ctx"] == {} and record["schema"] == OBS_SCHEMA
    assert record["pid"] == os.getpid() and record["ts"] != -1


def test_level_floor_filters_below():
    em = EventEmitter(level="warn")
    assert em.emit("quiet", level="debug") is None
    assert em.emit("quiet", level="info") is None
    assert em.emit("loud", level="error")["level"] == "error"
    assert [r["event"] for r in em.recorder.since(0)] == ["loud"]


def test_disabled_emitter_is_a_no_op():
    em = EventEmitter(enabled=False)
    assert em.emit("x") is None
    assert em.recorder.since(0) == []


def test_file_sink_writes_one_jsonl_per_pid(tmp_path):
    em = EventEmitter(directory=tmp_path)
    em.emit("first", detail=1)
    em.emit("second", level="warn")
    em.close()
    path = tmp_path / f"events-{os.getpid()}.jsonl"
    lines = [json.loads(line) for line in
             path.read_text().strip().split("\n")]
    assert [r["event"] for r in lines] == ["first", "second"]
    assert lines[0]["seq"] == 1 and lines[1]["level"] == "warn"


def test_emit_survives_unserializable_fields(tmp_path):
    em = EventEmitter(directory=tmp_path)
    em.emit("odd", payload=object())  # default=str in the sink
    em.close()
    path = tmp_path / f"events-{os.getpid()}.jsonl"
    record = json.loads(path.read_text())
    assert record["event"] == "odd" and "object object" in record["payload"]
    assert em.write_errors == 0


def test_emit_survives_a_dead_sink_directory(tmp_path):
    target = tmp_path / "obs"
    target.mkdir()
    em = EventEmitter(directory=target / "nested")
    (target / "nested").write_text("a file where a directory should be")
    record = em.emit("still_recorded")
    assert record is not None  # never raises; ring still has it
    assert em.recorder.since(0)[0]["event"] == "still_recorded"
    assert em.write_errors >= 1


def test_dump_lands_next_to_the_events_log(tmp_path):
    em = EventEmitter(directory=tmp_path)
    em.emit("before_crash")
    path = em.dump(reason="test")
    header, record = [json.loads(line) for line in
                      path.read_text().strip().split("\n")]
    assert path == tmp_path / "flight-recorder.jsonl"
    assert header["event"] == "flight_recorder_dump"
    assert header["reason"] == "test" and header["events"] == 1
    assert record["event"] == "before_crash"


def test_dump_without_directory_is_none():
    assert EventEmitter().dump(reason="nowhere") is None


def test_singleton_reads_environment(tmp_path):
    os.environ["REPRO_OBS_DIR"] = str(tmp_path)
    reset_emitter()
    em = emitter()
    assert em.directory == tmp_path
    emit("via_module")
    assert em.recorder.since(0)[0]["event"] == "via_module"


def test_kill_switch_disables_everything(tmp_path):
    os.environ["REPRO_OBS"] = "0"
    os.environ["REPRO_OBS_DIR"] = str(tmp_path)
    reset_emitter()
    assert emit("dropped") is None
    assert emitter().recorder.since(0) == []
    assert list(tmp_path.iterdir()) == []


def test_configure_exports_dir_for_child_processes(tmp_path):
    em = configure(tmp_path / "obs")
    assert os.environ["REPRO_OBS_DIR"] == str(tmp_path / "obs")
    assert em is emitter()
    assert em.path.name == f"events-{os.getpid()}.jsonl"
