"""``repro top``: snapshot gathering and pure-text rendering."""

import io

from repro.obs import top
from repro.service import Service, ServiceClient, ServiceConfig


def sample_snapshot():
    return {
        "taken_s": 0.0,
        "errors": {"fabric": "ApiError: 404 no_fabric"},
        "healthz": {"status": "ok", "version": "1.0", "uptime_s": 12.0,
                    "queue_depth": 1,
                    "health": {"reasons": {}}},
        "jobs": [
            {"id": "aaaa11112222", "state": "RUNNING", "tenant": "alice",
             "created_s": 2.0,
             "progress": {"done": 3, "total": 8, "cached": 1}},
            {"id": "bbbb33334444", "state": "DONE", "tenant": "bob",
             "created_s": 1.0, "elapsed_s": 4.25, "progress": {}},
        ],
        "metrics": "\n".join((
            'service_job_stage_seconds_sum{stage="submit_to_lease"} 0.5',
            'service_job_stage_seconds_count{stage="submit_to_lease"} 5',
            'service_cache{field="hits"} 3',
            'service_cache{field="misses"} 1',
        )) + "\n",
        "events": {"events": [
            {"seq": 9, "level": "info", "event": "job_submitted",
             "ctx": {"job_id": "aaaa11112222"}},
            {"seq": 10, "level": "error", "event": "point_failed",
             "ctx": {"request_id": "feedbeefcafe"}},
        ], "last_seq": 10},
        "fabric": {
            "states": {"DONE": 4, "LEASED": 1}, "draining": False,
            "worker_detail": {
                "w0": {"last_contact_s": 0.2, "last_heartbeat_s": 0.1,
                       "leased": True, "stale": False},
                "w1": {"last_contact_s": 9.0, "last_heartbeat_s": 8.0,
                       "leased": True, "stale": True},
            },
        },
    }


def test_render_covers_every_section_plainly():
    text = top.render(sample_snapshot(), color=False)
    assert "\x1b[" not in text
    assert "service ok" in text and "queue depth 1" in text
    assert "running=1" in text and "done=1" in text
    assert "3/8 (1 cached)" in text and "4.25s" in text
    assert "submit>to>lease: 100ms x5" in text
    assert "cache hit ratio" in text and "75%" in text
    assert "done=4" in text and "leased=1" in text
    assert "STALE" in text and "w1" in text
    assert "point_failed" in text and "feedbeefcafe" in text
    # A missing fabric endpoint is expected on the local backend.
    assert "no_fabric" not in text


def test_render_colors_only_when_asked():
    assert "\x1b[" in top.render(sample_snapshot(), color=True)


def test_render_degrades_per_section():
    snap = {"taken_s": 0.0, "healthz": None, "jobs": None, "metrics": None,
            "events": None, "fabric": None,
            "errors": {"jobs": "TransportError: connection refused"}}
    text = top.render(snap, color=False)
    assert "jobs: unavailable" in text
    assert "! jobs: TransportError: connection refused" in text


def test_gather_from_a_live_in_process_service(tmp_path):
    service = Service(ServiceConfig(state_dir=tmp_path / "state"))
    client = ServiceClient(app=service.app)
    client.submit(experiment="E6", variant="quick")
    snap = top.gather(client)
    assert snap["healthz"]["status"] == "ok"
    assert len(snap["jobs"]) == 1
    assert "service_jobs_submitted_total" in snap["metrics"]
    assert snap["events"]["last_seq"] >= 1
    assert snap["fabric"] is None  # local backend: endpoint 404s
    assert "fabric" in snap["errors"]


def test_run_loop_draws_frames_and_clears_between(tmp_path):
    service = Service(ServiceConfig(state_dir=tmp_path / "state"))
    client = ServiceClient(app=service.app)
    out = io.StringIO()
    slept = []
    frames = top.run(client, interval_s=0.5, iterations=2, color=False,
                     out=out, sleep=slept.append)
    assert frames == 2
    assert slept == [0.5]  # no sleep after the final frame
    assert out.getvalue().count("\x1b[2J") == 2  # clear precedes each frame


def test_run_once_never_clears(tmp_path):
    service = Service(ServiceConfig(state_dir=tmp_path / "state"))
    client = ServiceClient(app=service.app)
    out = io.StringIO()
    frames = top.run(client, iterations=1, color=False, out=out,
                     sleep=lambda _s: None)
    assert frames == 1
    assert "\x1b[" not in out.getvalue()
    assert "repro top" in out.getvalue()
