"""Cross-process correlation: one ``job_id`` greppable end-to-end.

The tentpole claim of the observability plane is that a bound context
survives every hop — scheduler thread to coordinator queue via the
``X-Repro-Context`` header, lease response to worker, worker report
back to coordinator — so a single ``job_id`` ties together records
emitted by *different processes* into different JSONL files.
"""

import json

from repro.fabric import FabricRunner
from repro.obs import bind, configure, emitter

from tests.fabric._points import OkPoint


def records_by_job(paths, job_id):
    out = []
    for path in paths:
        for line in path.read_text().strip().split("\n"):
            if not line:
                continue
            record = json.loads(line)
            if (record.get("ctx") or {}).get("job_id") == job_id:
                out.append(record)
    return out


def test_thread_fleet_stamps_job_id_on_both_sides(tmp_path):
    with bind(job_id="job-threaded"):
        with FabricRunner(workers=2, spawn="thread", poll_s=0.01,
                          state_dir=tmp_path / "fab") as runner:
            runner.run([OkPoint(token=t) for t in ("a", "bb")])
    ring = emitter().recorder.since(
        0, match=lambda r: (r.get("ctx") or {}).get("job_id")
        == "job-threaded")
    names = {r["event"] for r in ring}
    # Coordinator-side and worker-side events both carry the binding.
    assert "point_enqueued" in names
    assert "point_execute_start" in names and "point_execute_done" in names
    workers = {r["ctx"].get("worker_id") for r in ring
               if r["event"] == "point_execute_done"}
    assert workers and all(w for w in workers)


def test_process_fleet_correlates_across_jsonl_files(tmp_path):
    obs_dir = tmp_path / "obs"
    configure(obs_dir)  # exports REPRO_OBS_DIR for the spawned workers
    with bind(job_id="job-multiproc"):
        with FabricRunner(workers=2, spawn="process", poll_s=0.05,
                          state_dir=tmp_path / "fab") as runner:
            values = runner.run([OkPoint(token=t)
                                 for t in ("a", "bb", "ccc")])
    assert [v["token"] for v in values] == ["a", "bb", "ccc"]
    emitter().close()

    logs = sorted(obs_dir.glob("events-*.jsonl"))
    assert len(logs) >= 2  # the coordinator process plus >=1 worker
    matched = records_by_job(logs, "job-multiproc")
    pids = {r["pid"] for r in matched}
    assert len(pids) >= 2, \
        f"job_id should appear in >=2 processes' logs, got pids={pids}"
    worker_side = [r for r in matched
                   if r["event"].startswith("point_execute")]
    coordinator_side = [r for r in matched
                        if r["event"] in ("point_enqueued", "point_leased",
                                          "point_done")]
    assert worker_side and coordinator_side
    # The worker re-bound the inherited context plus its own identity.
    assert all(r["ctx"].get("worker_id") for r in worker_side)
    assert all(r["ctx"].get("point_key") for r in worker_side)
