"""Tests for the EXPERIMENTS.md generator."""

import json

import pytest

from repro.bench import ExperimentResult, save_result
from repro.bench.report import generate


def test_generate_from_saved_results(tmp_path):
    save_result(
        ExperimentResult("E1", "demo one", rows=[{"a": 1}],
                         paper={"x": 1.0}, measured={"x": 1.1, "y": 2}),
        tmp_path,
    )
    save_result(
        ExperimentResult("E2", "demo two", notes="line one\nline two"),
        tmp_path,
    )
    text = generate(tmp_path)
    assert "## E1 — demo one" in text
    assert "## E2 — demo two" in text
    assert "paper" in text and "measured" in text
    # Extra measured keys surface too.
    assert "y = 2" in text
    # Only the first note line is quoted.
    assert "line one" in text and "line two" not in text


def test_generate_orders_by_experiment_id(tmp_path):
    for exp in ("E10", "E2", "E1"):
        save_result(ExperimentResult(exp, exp), tmp_path)
    text = generate(tmp_path)
    assert text.index("## E1 ") < text.index("## E2 ") < text.index("## E10 ")


def test_generate_requires_results(tmp_path):
    with pytest.raises(FileNotFoundError):
        generate(tmp_path / "empty")


def test_generated_json_parsable_roundtrip(tmp_path):
    res = ExperimentResult("E3", "t", rows=[{"k": 1.5}])
    path = save_result(res, tmp_path)
    assert json.loads(path.read_text())["rows"][0]["k"] == 1.5
