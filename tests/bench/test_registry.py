"""Tests for the declarative experiment registry."""

import pytest

from repro.bench import experiments as E
from repro.bench.harness import ExperimentResult
from repro.bench.registry import REGISTRY, ExperimentSpec, get, ids, legacy_table


def test_every_spec_well_formed():
    for exp_id, spec in REGISTRY.items():
        assert spec.id == exp_id
        assert callable(spec.fn)
        assert spec.title
        assert isinstance(spec.full_kwargs, dict)
        assert isinstance(spec.quick_kwargs, dict)
        assert isinstance(spec.tags, tuple) and spec.tags


def test_ids_order_and_lookup():
    assert ids()[0] == "E1"
    assert "E14" in ids()
    assert get("E6").fn is E.e6_scaling_comparison
    with pytest.raises(KeyError, match="E99"):
        get("E99")


def test_kwargs_returns_a_copy():
    spec = get("E4")
    spec.kwargs(quick=True)["iterations"] = 999
    assert spec.quick_kwargs["iterations"] != 999


def test_parallelizable_specs_accept_runner():
    import inspect

    for spec in REGISTRY.values():
        params = inspect.signature(spec.fn).parameters
        if spec.parallelizable:
            assert "runner" in params, spec.id
        else:
            assert "runner" not in params, spec.id


def test_sweep_experiments_are_parallelizable():
    for exp_id in ("E3", "E4", "E5", "E6", "E8", "E9", "E10", "E11",
                   "E12", "E14"):
        assert get(exp_id).parallelizable, exp_id
    for exp_id in ("E1", "E2", "E7", "E7b", "E13", "E13b"):
        assert not get(exp_id).parallelizable, exp_id


def test_spec_run_quick():
    result = get("E2").run(quick=True)
    assert isinstance(result, ExperimentResult)
    assert result.experiment == "E2"


def test_spec_run_with_runner(tmp_path):
    from repro.runner import ResultCache, Runner

    runner = Runner(cache=ResultCache(directory=tmp_path))
    spec = get("E4")
    result = spec.run(quick=True, runner=runner)
    assert result.experiment == "E4"
    assert runner.stats.points > 0


def test_legacy_table_matches_registry():
    table = legacy_table()
    assert set(table) == set(REGISTRY)
    for exp_id, (desc, fn, full, quick) in table.items():
        spec = REGISTRY[exp_id]
        assert desc == spec.title
        assert fn is spec.fn
        assert full == spec.full_kwargs
        assert quick == spec.quick_kwargs


def test_specs_are_frozen():
    with pytest.raises(Exception):
        get("E1").title = "mutated"


def test_experiment_spec_defaults():
    spec = ExperimentSpec("EX", "demo", lambda: None)
    assert spec.kwargs() == {}
    assert not spec.parallelizable
