"""Scaled-down runs of every experiment driver (structure + shape)."""

import pytest

from repro.bench import experiments as E
from repro.sim.units import MiB

pytestmark = pytest.mark.slow


class TestE1:
    def test_matches_paper_numbers(self):
        res = E.e1_single_gpu_throughput(iterations=2)
        assert res.measured["deeplab_img_per_s"] == pytest.approx(6.7, rel=0.05)
        assert res.measured["resnet50_img_per_s"] == pytest.approx(300, rel=0.05)
        assert res.measured["throughput_ratio"] == pytest.approx(44.8, rel=0.1)


class TestE2:
    def test_distribution_shape(self):
        res = E.e2_tensor_distribution()
        assert res.measured["tensor_count"] == 440
        # Most tensors are tiny, most bytes are in the few big ones.
        assert res.rows[0]["tensors"] > 200
        assert float(res.rows[-1]["share of bytes"].rstrip("%")) > 90


class TestE3:
    def test_gdr_wins_everywhere_small_scale(self):
        res = E.e3_osu_allreduce(gpus=12, iterations=2,
                                 sizes=(64, 64 * 1024, 16 * MiB))
        assert res.measured["gdr_faster_at_all_sizes"] == "yes"
        assert res.measured["small_msg_speedup"] > 2


class TestE4:
    def test_small_fusion_has_most_ops(self):
        res = E.e4_fusion_sweep(gpus=6, iterations=2,
                                thresholds=(0, 64 * MiB))
        assert res.rows[0]["Spectrum ops/iter"] > res.rows[1]["Spectrum ops/iter"]
        assert (res.rows[0]["Spectrum allreduce ms/iter"]
                > res.rows[1]["Spectrum allreduce ms/iter"])


class TestE5:
    def test_extreme_cycles_tracked(self):
        res = E.e5_cycle_sweep(gpus=6, iterations=2, cycles_ms=(1.0, 50.0))
        assert res.rows[0]["GDR ops/iter"] > res.rows[1]["GDR ops/iter"]
        assert res.rows[0]["GDR stall ms/iter"] <= res.rows[1]["GDR stall ms/iter"]


class TestE6E8:
    @pytest.fixture(scope="class")
    def e6(self):
        return E.e6_scaling_comparison(gpu_counts=(1, 6, 12), iterations=2)

    def test_rows_cover_counts(self, e6):
        assert [r["GPUs"] for r in e6.rows] == [1, 6, 12]

    def test_efficiency_reasonable_small_scale(self, e6):
        for row in e6.rows:
            eff = float(row["tuned eff"].rstrip("%"))
            assert 80 < eff <= 101

    def test_e8_derives_from_e6(self, e6):
        res = E.e8_efficiency_table(e6=e6)
        assert len(res.rows) == len(e6.rows)
        assert "gain (points)" in res.rows[0]


class TestE7:
    def test_convergence_model_table(self):
        res = E.e7_miou()
        assert res.measured["distributed_miou"] == pytest.approx(80.8, abs=0.5)
        # Warmup matters: dropping it costs accuracy.
        assert res.rows[2]["mIOU %"] < res.rows[1]["mIOU %"]
        # Distributed stays close to the single-GPU baseline.
        assert res.rows[0]["mIOU %"] - res.rows[1]["mIOU %"] < 1.5

    def test_npnn_real_training_learns(self):
        res = E.e7_npnn_training(steps=20, world=2)
        assert res.measured["replicas_bitwise_in_sync"] == "yes"
        assert res.measured["final_miou"] > res.measured["initial_miou"]


class TestE9:
    def test_variants_present(self):
        res = E.e9_ablation(gpus=12, iterations=2)
        names = [r["configuration"] for r in res.rows]
        assert "default" in names and "tuned (all steps)" in names
        assert "tuned + fp16 compression" in names
        assert len(names) == 7


class TestE12:
    def test_weak_and_strong_columns(self):
        res = E.e12_strong_vs_weak_scaling(gpu_counts=(6, 12),
                                           global_batch=24, iterations=2)
        assert res.rows[0]["strong bs/GPU"] == 4
        assert res.rows[1]["strong bs/GPU"] == 2
        assert res.measured["strong_scaling_efficiency"] > 80

    def test_indivisible_batch_rejected(self):
        import pytest

        with pytest.raises(ValueError, match="divisible"):
            E.e12_strong_vs_weak_scaling(gpu_counts=(7,), global_batch=24,
                                         iterations=2)


class TestE13:
    def test_structure_small_scale(self):
        res = E.e13_degraded_rail(gpus=12, iterations=2,
                                  factors=(1.0, 0.5))
        assert len(res.rows) == 2
        assert "retained_at_50pct_rail" in res.measured
        # At 12 GPUs everything hides: retention ~1.
        assert res.measured["retained_at_50pct_rail"] > 0.95


class TestE10:
    def test_probe_only(self):
        res = E.e10_autotune_vs_staged(probe_gpus=6, iterations=2,
                                       validate=False, run_autotuner=False)
        assert res.measured["staged_measurements"] == 10
        assert "MVAPICH2-GDR" in res.measured["staged_choice"]

    def test_autotuner_comparison_included(self):
        res = E.e10_autotune_vs_staged(probe_gpus=6, iterations=2,
                                       validate=False, run_autotuner=True)
        methods = {row["method"] for row in res.rows}
        assert methods == {"staged", "autotune"}
        assert res.measured["autotune_measurements"] >= 5
