"""Tests for the ASCII chart renderer."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bench import ascii_chart


def test_basic_chart_structure():
    out = ascii_chart([1, 2, 3], {"a": [1.0, 2.0, 3.0]}, width=20, height=5)
    lines = out.splitlines()
    # 5 grid rows + axis + x labels + legend
    assert len(lines) == 8
    assert "o=a" in lines[-1]
    assert lines[0].endswith("|") and "|" in lines[0]


def test_markers_distinct_per_series():
    out = ascii_chart([1, 2], {"up": [1, 2], "down": [2, 1]}, width=20, height=5)
    assert "o=up" in out and "x=down" in out
    assert "o" in out and "x" in out


def test_extremes_plotted_at_edges():
    out = ascii_chart([0, 10], {"s": [0.0, 100.0]}, width=21, height=5)
    lines = out.splitlines()
    # max value in top row, min in bottom row.
    assert "o" in lines[0]
    assert "o" in lines[4]
    assert lines[0].strip().startswith("100")


def test_log_x_spacing():
    out_lin = ascii_chart([1, 10, 100], {"s": [1, 1, 1]}, width=21, height=4)
    out_log = ascii_chart([1, 10, 100], {"s": [1, 1, 1]}, width=21, height=4,
                          log_x=True)
    # Log spacing puts the middle point at the center column; linear
    # pushes it toward the left edge — the renders must differ.
    assert out_lin != out_log


def test_axis_labels_and_legend():
    out = ascii_chart([1, 2], {"s": [1, 2]}, x_label="GPUs", y_label="img/s")
    assert "x: GPUs" in out and "y: img/s" in out


def test_constant_series_does_not_crash():
    out = ascii_chart([1, 2, 3], {"flat": [5.0, 5.0, 5.0]})
    assert "o" in out


def test_validation():
    with pytest.raises(ValueError):
        ascii_chart([], {"a": []})
    with pytest.raises(ValueError):
        ascii_chart([1, 2], {"a": [1.0]})
    with pytest.raises(ValueError):
        ascii_chart([1], {"a": [1]}, width=4)
    with pytest.raises(ValueError):
        ascii_chart([0, 1], {"a": [1, 2]}, log_x=True)
    with pytest.raises(ValueError):
        ascii_chart([1], {f"s{i}": [1] for i in range(9)})


@given(
    st.lists(st.floats(0.1, 1e6), min_size=2, max_size=12, unique=True),
    st.integers(16, 80),
    st.integers(4, 30),
)
def test_never_crashes_and_size_stable(xs, width, height):
    xs = sorted(xs)
    ys = [float(i) for i in range(len(xs))]
    out = ascii_chart(xs, {"s": ys}, width=width, height=height)
    lines = out.splitlines()
    assert len(lines) == height + 3
    # Every grid row is exactly the same width.
    assert len({len(l) for l in lines[:height]}) == 1


# -- chart_result ----------------------------------------------------------

def _result(rows):
    from repro.bench import ExperimentResult

    return ExperimentResult(experiment="ET", title="test", rows=rows)


def test_chart_result_grouped_series(tmp_path):
    res = _result([
        {"gpus": 6, "config": "default", "efficiency": "95.7%"},
        {"gpus": 6, "config": "tuned", "efficiency": "96.0%"},
        {"gpus": 24, "config": "default", "efficiency": "93.2%"},
        {"gpus": 24, "config": "tuned", "efficiency": "93.3%"},
    ])
    from repro.bench import chart_result

    out = chart_result(res, x="gpus", y="efficiency", group="config",
                       width=32, height=6)
    assert "o=default" in out and "x=tuned" in out
    assert "x: gpus" in out and "y: efficiency" in out
    # Smoke-render to a temp file, as the CLI/report flow would.
    target = tmp_path / "chart.txt"
    target.write_text(out)
    assert target.stat().st_size > 0


def test_chart_result_single_series_and_comma_numbers(tmp_path):
    from repro.bench import chart_result

    res = _result([
        {"gpus": 1, "img/s": "1,244"},
        {"gpus": 6, "img/s": "7,100"},
    ])
    out = chart_result(res, x="gpus", y="img/s", width=24, height=4)
    target = tmp_path / "chart.txt"
    target.write_text(out)
    assert target.stat().st_size > 0
    assert "o=img/s" in out


def test_chart_result_validation():
    from repro.bench import chart_result

    with pytest.raises(ValueError):
        chart_result(_result([]), x="gpus", y="eff")
    with pytest.raises(ValueError):
        chart_result(_result([{"gpus": 1}]), x="gpus", y="missing")
    # Ragged groups (a series not covering every x) are rejected.
    with pytest.raises(ValueError):
        chart_result(_result([
            {"gpus": 1, "cfg": "a", "v": 1},
            {"gpus": 2, "cfg": "a", "v": 2},
            {"gpus": 1, "cfg": "b", "v": 3},
        ]), x="gpus", y="v", group="cfg")


def test_chart_result_renders_saved_experiment_shapes(tmp_path):
    """Smoke-render the figure-shaped experiment layouts end to end."""
    from repro.bench import chart_result

    shaped = {
        "e6-scaling": _result([
            {"gpus": g, "config": c, "img/s": g * (50 if c == "tuned" else 40)}
            for g in (1, 6, 24) for c in ("default", "tuned")
        ]),
        "e4-fusion": _result([
            {"threshold (MiB)": t, "iter (ms)": 1300 - 10 * t}
            for t in (1, 8, 64, 128)
        ]),
    }
    for name, res in shaped.items():
        x, y = list(res.rows[0])[0], list(res.rows[0])[-1]
        group = "config" if "config" in res.rows[0] else None
        out = chart_result(res, x=x, y=y, group=group, log_x=(name == "e4-fusion"))
        target = tmp_path / f"{name}.txt"
        target.write_text(out)
        assert target.stat().st_size > 0
