"""Tests for the result container and table rendering."""

import json

import pytest

from repro.bench import ExperimentResult, format_rows, save_result


def test_format_rows_alignment():
    rows = [{"a": 1, "b": "xx"}, {"a": 100, "b": "y"}]
    text = format_rows(rows)
    lines = text.splitlines()
    assert lines[0].split() == ["a", "b"]
    assert len(lines) == 4  # header, rule, two rows


def test_format_rows_requires_same_columns():
    with pytest.raises(ValueError):
        format_rows([{"a": 1}, {"b": 2}])


def test_format_rows_empty():
    assert format_rows([]) == "(no rows)"


def test_result_table_sections():
    res = ExperimentResult(
        experiment="EX",
        title="demo",
        rows=[{"k": 1}],
        paper={"claim": 92.0},
        measured={"claim": 93.1},
        notes="a note",
    )
    text = res.table()
    assert "EX: demo" in text
    assert "paper=" in text and "ours=" in text
    assert "a note" in text


def test_result_missing_measured_shows_dash():
    res = ExperimentResult("EX", "demo", paper={"claim": 1.0})
    assert "—" in res.table()


def test_json_roundtrip(tmp_path):
    res = ExperimentResult("E1", "t", rows=[{"x": 1.5}], paper={"p": 2})
    path = save_result(res, tmp_path)
    assert path.name == "e1.json"
    data = json.loads(path.read_text())
    assert data["rows"] == [{"x": 1.5}]
    assert data["paper"] == {"p": 2}


def test_to_json_envelope_fields():
    from repro import package_version
    from repro.bench.harness import SCHEMA_VERSION

    res = ExperimentResult("E1", "t", meta={"variant": "quick"})
    data = json.loads(res.to_json())
    assert data["schema_version"] == SCHEMA_VERSION
    assert data["package_version"] == package_version()
    assert data["meta"] == {"variant": "quick"}


def test_load_result_roundtrip(tmp_path):
    from repro.bench.harness import load_result

    res = ExperimentResult(
        "E5", "cycle", rows=[{"x": 1.5, "y": "2%"}],
        paper={"p": 2}, measured={"p": 2.1}, notes="n",
        meta={"variant": "full", "runner": {"workers": 4}},
    )
    assert load_result(save_result(res, tmp_path)) == res


def test_load_result_reads_schema_0_files(tmp_path):
    from repro.bench.harness import load_result

    legacy = tmp_path / "e9.json"
    legacy.write_text(json.dumps({
        "experiment": "E9", "title": "old", "rows": [{"a": 1}],
        "paper": {}, "measured": {"k": 2}, "notes": "",
    }))
    res = load_result(legacy)
    assert res.experiment == "E9"
    assert res.rows == [{"a": 1}]
    assert res.meta == {}


def test_load_result_rejects_newer_schema(tmp_path):
    from repro.bench.harness import SCHEMA_VERSION, load_result

    path = tmp_path / "e1.json"
    path.write_text(json.dumps({"experiment": "E1",
                                "schema_version": SCHEMA_VERSION + 1}))
    with pytest.raises(ValueError, match="newer"):
        load_result(path)


def test_load_result_rejects_non_result_json(tmp_path):
    from repro.bench.harness import load_result

    path = tmp_path / "junk.json"
    path.write_text(json.dumps({"hello": "world"}))
    with pytest.raises(ValueError, match="not an ExperimentResult"):
        load_result(path)


def test_payload_excludes_envelope_and_meta():
    res = ExperimentResult("E1", "t", meta={"runner": {"workers": 8}})
    payload = res.payload()
    assert "meta" not in payload
    assert "schema_version" not in payload
    assert set(payload) == {"experiment", "title", "rows", "paper",
                            "measured", "notes"}
