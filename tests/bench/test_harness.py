"""Tests for the result container and table rendering."""

import json

import pytest

from repro.bench import ExperimentResult, format_rows, save_result


def test_format_rows_alignment():
    rows = [{"a": 1, "b": "xx"}, {"a": 100, "b": "y"}]
    text = format_rows(rows)
    lines = text.splitlines()
    assert lines[0].split() == ["a", "b"]
    assert len(lines) == 4  # header, rule, two rows


def test_format_rows_requires_same_columns():
    with pytest.raises(ValueError):
        format_rows([{"a": 1}, {"b": 2}])


def test_format_rows_empty():
    assert format_rows([]) == "(no rows)"


def test_result_table_sections():
    res = ExperimentResult(
        experiment="EX",
        title="demo",
        rows=[{"k": 1}],
        paper={"claim": 92.0},
        measured={"claim": 93.1},
        notes="a note",
    )
    text = res.table()
    assert "EX: demo" in text
    assert "paper=" in text and "ours=" in text
    assert "a note" in text


def test_result_missing_measured_shows_dash():
    res = ExperimentResult("EX", "demo", paper={"claim": 1.0})
    assert "—" in res.table()


def test_json_roundtrip(tmp_path):
    res = ExperimentResult("E1", "t", rows=[{"x": 1.5}], paper={"p": 2})
    path = save_result(res, tmp_path)
    assert path.name == "e1.json"
    data = json.loads(path.read_text())
    assert data["rows"] == [{"x": 1.5}]
    assert data["paper"] == {"p": 2}
