"""Bench-regression sentinel: measured-block diffs and the quick gate."""

import json

import pytest

from repro.bench.harness import ExperimentResult, save_result
from repro.bench.sentinel import (
    DEFAULT_TOLERANCE,
    compare_results,
    run_sentinel,
)


def _result(measured, experiment="E1"):
    return ExperimentResult(experiment=experiment, title="t",
                            measured=measured)


def test_identical_results_are_ok():
    base = _result({"a": 1.0, "b": "yes"})
    report = compare_results(base, _result({"a": 1.0, "b": "yes"}))
    assert report.ok and len(report.deltas) == 2
    assert all(d.status == "ok" for d in report.deltas)
    assert "OK" in report.summary()


def test_numeric_drift_within_tolerance_is_ok():
    base = _result({"a": 100.0})
    assert compare_results(base, _result({"a": 104.0}),
                           tolerance=0.05).ok
    report = compare_results(base, _result({"a": 106.0}), tolerance=0.05)
    assert not report.ok
    (delta,) = report.regressions
    assert delta.status == "regression"
    assert delta.rel_error == pytest.approx(0.06)
    assert "REGRESSION" in report.summary()


def test_zero_baseline_tolerates_only_zero():
    base = _result({"share": 0.0})
    assert compare_results(base, _result({"share": 0.0})).ok
    assert not compare_results(base, _result({"share": 0.01})).ok


def test_missing_key_is_always_a_regression():
    report = compare_results(_result({"a": 1.0, "gone": 2.0}),
                             _result({"a": 1.0}))
    assert not report.ok
    (delta,) = report.regressions
    assert delta.key == "gone" and delta.status == "missing"


def test_new_key_fails_the_gate_symmetrically():
    # Regression test for the one-directional gate: a candidate key
    # absent from the baseline must fail exactly like a baseline key
    # absent from the candidate — otherwise unreviewed metrics ship
    # against a stale committed baseline with exit code 0.
    report = compare_results(_result({"a": 1.0}),
                             _result({"a": 1.0, "extra": 3.0}))
    assert not report.ok
    (delta,) = report.regressions
    assert delta.key == "extra" and delta.status == "new"
    assert delta.baseline is None and delta.fresh == 3.0
    assert "REGRESSION" in report.summary()


def test_missing_key_semantics_are_symmetric():
    left = _result({"a": 1.0, "only_left": 2.0})
    right = _result({"a": 1.0, "only_right": 2.0})
    forward = compare_results(left, right)
    backward = compare_results(right, left)
    assert not forward.ok and not backward.ok
    assert [d.status for d in forward.regressions] == ["missing", "new"]
    assert [d.status for d in backward.regressions] == ["missing", "new"]


def test_non_numeric_keys_compare_exactly():
    assert not compare_results(_result({"who": "tuned"}),
                               _result({"who": "default"})).ok
    # Booleans are not numeric: True must not drift into 1.04.
    assert not compare_results(_result({"flag": True}),
                               _result({"flag": 1.04})).ok


def test_negative_tolerance_rejected():
    with pytest.raises(ValueError):
        compare_results(_result({}), _result({}), tolerance=-0.1)


# -- run_sentinel against a monkeypatched registry --------------------------

class _FakeSpec:
    def __init__(self, measured):
        self.measured = measured

    def run(self, quick=False, runner=None):
        assert quick
        return _result(self.measured)


def _patch_registry(monkeypatch, measured):
    import repro.bench.sentinel as sentinel

    monkeypatch.setattr(sentinel, "REGISTRY", {"E1": _FakeSpec(measured)})


def test_run_sentinel_ok_and_artifact(tmp_path, monkeypatch):
    _patch_registry(monkeypatch, {"a": 1.0})
    path = save_result(_result({"a": 1.0}), tmp_path)
    artifact = tmp_path / "diff.json"
    reports = run_sentinel([path], artifact=artifact)
    assert [r.ok for r in reports] == [True]
    doc = json.loads(artifact.read_text())
    assert doc["ok"] is True
    assert doc["tolerance"] == DEFAULT_TOLERANCE
    assert doc["experiments"][0]["experiment"] == "E1"


def test_run_sentinel_flags_injected_regression(tmp_path, monkeypatch):
    _patch_registry(monkeypatch, {"a": 1.0})
    path = save_result(_result({"a": 2.0}), tmp_path)  # baseline disagrees
    artifact = tmp_path / "diff.json"
    reports = run_sentinel([path], artifact=artifact)
    assert not reports[0].ok
    assert json.loads(artifact.read_text())["ok"] is False


def test_run_sentinel_rejects_unknown_experiment(tmp_path, monkeypatch):
    _patch_registry(monkeypatch, {"a": 1.0})
    path = save_result(_result({"a": 1.0}, experiment="E99"), tmp_path)
    with pytest.raises(ValueError, match="unknown experiment"):
        run_sentinel([path])
