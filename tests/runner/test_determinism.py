"""The A/B determinism gate: serial vs parallel vs warm-cache.

Every runner-ported experiment must produce the same
``ExperimentResult.payload()`` — byte-for-byte as JSON — whether its
points run inline, fan out across worker processes, or come back from
the on-disk result cache.  The fast tier checks tiny variants of the
three gate experiments (E4, E6, E14); the full quick-tier variants run
under the ``slow`` marker.
"""

import json

import pytest

from repro.bench import experiments as E
from repro.runner import ResultCache, Runner

#: (driver, tiny kwargs) per gate experiment.
TINY = {
    "E4": (E.e4_fusion_sweep,
           dict(gpus=6, iterations=2, thresholds=(0, 1 << 25))),
    "E6": (E.e6_scaling_comparison,
           dict(gpu_counts=(1, 6), iterations=2)),
    "E14": (E.e14_efficiency_attribution,
            dict(gpu_counts=(6,), iterations=2)),
}


def _payload_json(result):
    return json.dumps(result.payload(), sort_keys=True)


def _gate(driver, kwargs, tmp_path, workers=2):
    serial = driver(**kwargs)
    cache = ResultCache(directory=tmp_path / "cache")
    parallel = driver(**kwargs, runner=Runner(workers=workers, cache=cache))
    warm_runner = Runner(workers=workers, cache=cache)
    warm = driver(**kwargs, runner=warm_runner)
    assert warm_runner.stats.executed == 0, "warm run re-executed points"
    assert _payload_json(parallel) == _payload_json(serial)
    assert _payload_json(warm) == _payload_json(serial)


@pytest.mark.parametrize("exp_id", sorted(TINY))
def test_serial_parallel_warm_identical(exp_id, tmp_path):
    driver, kwargs = TINY[exp_id]
    _gate(driver, kwargs, tmp_path)


def test_cache_only_runner_identical(tmp_path):
    """workers=0 + cache: pure memoization is also bit-identical."""
    driver, kwargs = TINY["E4"]
    _gate(driver, kwargs, tmp_path, workers=0)


@pytest.mark.slow
@pytest.mark.parametrize("exp_id", ["E4", "E6", "E14"])
def test_quick_variant_gate(exp_id, tmp_path):
    from repro.bench.registry import get

    spec = get(exp_id)
    _gate(spec.fn, spec.kwargs(quick=True), tmp_path)
