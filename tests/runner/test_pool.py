"""Tests for the Runner: ordering, dedup, caching, progress, counters."""

import pickle

import pytest

from repro.core import paper_default_config, paper_tuned_config
from repro.runner import ResultCache, Runner, RunnerError, TrainPoint, run_points
from repro.telemetry import MetricRegistry


def _points(n=3, **overrides):
    configs = [paper_tuned_config(), paper_default_config()]
    base = dict(iterations=2, jitter_std=0.0)
    base.update(overrides)
    return [
        TrainPoint(gpus=2 + i, config=configs[i % 2], **base)
        for i in range(n)
    ]


def test_serial_matches_direct_execution():
    points = _points(2)
    results = Runner().run(points)
    assert [m.images_per_second for m in results] == \
        [p.execute().images_per_second for p in points]


def test_parallel_merge_preserves_input_order():
    points = _points(4)
    serial = Runner().run(points)
    parallel = Runner(workers=2).run(points)
    for s, p in zip(serial, parallel):
        assert s.images_per_second == p.images_per_second
        assert s.gpus == p.gpus
    assert [m.gpus for m in parallel] == [p.gpus for p in points]


def test_parallel_results_bit_identical_to_serial():
    points = _points(2)
    serial = Runner().run(points)
    parallel = Runner(workers=2).run(points)
    for s, p in zip(serial, parallel):
        assert pickle.dumps(s.stats) == pickle.dumps(p.stats)


def test_batch_dedup_executes_once():
    point = _points(1)[0]
    runner = Runner()
    results = runner.run([point, point, point])
    assert runner.stats.points == 3
    assert runner.stats.executed == 1
    assert runner.stats.deduplicated == 2
    assert results[0] is results[1] is results[2]


def test_cache_hit_skips_execution(tmp_path):
    cache = ResultCache(directory=tmp_path)
    points = _points(2)
    cold = Runner(cache=cache)
    cold.run(points)
    assert cold.stats.executed == 2
    warm = Runner(cache=cache)
    warm_results = warm.run(points)
    assert warm.stats.executed == 0
    assert warm.stats.cache_hits == 2
    assert [m.images_per_second for m in warm_results] == \
        [m.images_per_second for m in cold.run(points)]


def test_cache_hit_value_bit_identical(tmp_path):
    cache = ResultCache(directory=tmp_path)
    point = _points(1)[0]
    (cold,) = Runner(cache=cache).run([point])
    (warm,) = Runner(cache=cache).run([point])
    assert pickle.dumps(warm) == pickle.dumps(cold)


def test_progress_callback_sees_every_point(tmp_path):
    seen = []
    cache = ResultCache(directory=tmp_path)
    points = _points(3)
    runner = Runner(cache=cache,
                    progress=lambda done, total, point, cached:
                    seen.append((done, total, point.gpus, cached)))
    runner.run(points)
    assert [(d, t) for d, t, _, _ in seen] == [(1, 3), (2, 3), (3, 3)]
    assert all(not cached for _, _, _, cached in seen)
    seen.clear()
    runner.run(points)
    assert all(cached for _, _, _, cached in seen)


def test_telemetry_counters(tmp_path):
    registry = MetricRegistry()
    cache = ResultCache(directory=tmp_path)
    runner = Runner(cache=cache, registry=registry)
    points = _points(2)
    runner.run(points)
    runner.run(points)
    points_total = registry.get("runner_points_total")
    assert points_total.labels(status="executed").value == 2
    assert points_total.labels(status="cache_hit").value == 2
    assert registry.get("runner_batches_total").default.value == 2
    assert registry.get("runner_execute_seconds_total").default.value > 0
    assert registry.get("runner_workers").default.value == 0


def test_failure_raises_runner_error():
    bad = TrainPoint(gpus=0, config=paper_tuned_config())
    with pytest.raises(RunnerError, match="point failed"):
        Runner().run([bad])


def test_failure_in_pool_raises_runner_error():
    bad = TrainPoint(gpus=0, config=paper_tuned_config())
    ok = _points(1)[0]
    with pytest.raises(RunnerError, match="point failed"):
        Runner(workers=2).run([bad, ok])


def test_run_points_convenience(tmp_path):
    points = _points(2)
    results = run_points(points, cache=ResultCache(directory=tmp_path))
    assert len(results) == 2
    assert results[0].gpus == points[0].gpus


def test_negative_workers_rejected():
    with pytest.raises(ValueError):
        Runner(workers=-1)


def test_meta_reports_workers_and_cache(tmp_path):
    runner = Runner(workers=2, cache=ResultCache(directory=tmp_path))
    runner.run(_points(2))
    meta = runner.meta()
    assert meta["workers"] == 2
    assert meta["points"] == 2
    assert meta["cache"]["entries"] == 2
