"""Tests for simulation points and their content-addressed keys."""

import dataclasses
import subprocess
import sys

import pytest

from repro.core import paper_default_config, paper_tuned_config
from repro.mpi.libraries import MPI_LIBRARIES
from repro.runner import OSUPoint, TrainPoint, cache_salt
from repro.runner.simpoint import _canonical


def _point(**overrides):
    base = dict(gpus=6, config=paper_tuned_config(), iterations=2)
    base.update(overrides)
    return TrainPoint(**base)


def test_key_is_sha256_hex():
    key = _point().key()
    assert len(key) == 64
    assert set(key) <= set("0123456789abcdef")


def test_key_stable_within_process():
    assert _point().key() == _point().key()


def test_key_depends_on_every_knob():
    base = _point()
    variants = [
        _point(gpus=12),
        _point(config=paper_default_config()),
        _point(model="resnet50"),
        _point(per_gpu_batch=4),
        _point(iterations=3),
        _point(warmup_iterations=2),
        _point(jitter_std=0.0),
        _point(seed=1),
        _point(negotiation="simulated"),
        _point(telemetry=True),
    ]
    keys = {p.key() for p in variants}
    assert base.key() not in keys
    assert len(keys) == len(variants)


def test_key_kind_discriminates():
    lib = MPI_LIBRARIES["MVAPICH2-GDR"]
    assert OSUPoint(gpus=6, library=lib, nbytes=1024).key() != _point().key()


def test_key_ignores_compare_false_fields():
    lib = MPI_LIBRARIES["MVAPICH2-GDR"]
    relabeled = dataclasses.replace(lib, notes="cosmetic edit")
    a = OSUPoint(gpus=6, library=lib, nbytes=1024)
    b = OSUPoint(gpus=6, library=relabeled, nbytes=1024)
    assert a.key() == b.key()


def test_key_includes_salt(monkeypatch):
    before = _point().key()
    monkeypatch.setattr("repro.runner.simpoint.SIM_SALT", "sim-999")
    assert _point().key() != before


def test_key_stable_across_processes():
    """The key must survive interpreter restarts (fresh hash randomization)."""
    code = (
        "from repro.core import paper_tuned_config\n"
        "from repro.runner import TrainPoint\n"
        "print(TrainPoint(gpus=6, config=paper_tuned_config(),"
        " iterations=2).key())\n"
    )
    out = subprocess.run(
        [sys.executable, "-c", code], capture_output=True, text=True,
        check=True,
    )
    assert out.stdout.strip() == _point().key()


def test_canonical_rejects_callables():
    with pytest.raises(TypeError):
        _canonical(lambda: None)


def test_cache_salt_mentions_package_version():
    import repro

    assert repro.__version__ in cache_salt()


def test_execute_matches_measure_training():
    from repro.core import measure_training

    point = _point()
    direct = measure_training(6, point.config, iterations=2)
    via_point = point.execute()
    assert via_point.images_per_second == direct.images_per_second
    assert via_point.stats.mean_iteration_seconds == \
        direct.stats.mean_iteration_seconds


def test_describe_is_informative():
    assert "deeplab@6gpus" in _point().describe()
    lib = MPI_LIBRARIES["MVAPICH2-GDR"]
    assert "osu_allreduce" in OSUPoint(gpus=6, library=lib,
                                       nbytes=1 << 16).describe()
