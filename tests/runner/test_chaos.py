"""Chaos tests: the Runner must survive crashing, hanging and flaky points.

The point classes here misbehave on purpose — ``os._exit`` a pool
worker, sleep past the watchdog, fail until a sentinel file appears —
and the assertions check the self-healing contract: the batch completes
(or quarantines precisely the poison point), innocents are never
charged, and the retry/timeout/respawn accounting is exact.
"""

import os
import time
from dataclasses import dataclass
from typing import ClassVar

import pytest

from repro.runner import Runner, RunnerError
from repro.runner.simpoint import SimPoint
from repro.telemetry import MetricRegistry


@dataclass(frozen=True)
class OkPoint(SimPoint):
    """Returns a payload derived from its token."""

    kind: ClassVar[str] = "chaos_ok"
    token: str

    def execute(self):
        return {"token": self.token}

    def describe(self):
        return f"ok:{self.token}"


@dataclass(frozen=True)
class RaisePoint(SimPoint):
    """Always raises (a deterministic in-process failure)."""

    kind: ClassVar[str] = "chaos_raise"
    token: str

    def execute(self):
        raise ValueError(f"poison {self.token}")

    def describe(self):
        return f"raise:{self.token}"


@dataclass(frozen=True)
class CrashPoint(SimPoint):
    """Kills its worker process outright (segfault stand-in)."""

    kind: ClassVar[str] = "chaos_crash"
    token: str

    def execute(self):
        os._exit(3)

    def describe(self):
        return f"crash:{self.token}"


@dataclass(frozen=True)
class HangPoint(SimPoint):
    """Runs far past any reasonable watchdog deadline."""

    kind: ClassVar[str] = "chaos_hang"
    token: str
    sleep_s: float = 60.0

    def execute(self):
        time.sleep(self.sleep_s)
        return {"token": self.token}

    def describe(self):
        return f"hang:{self.token}"


@dataclass(frozen=True)
class FlakyPoint(SimPoint):
    """Fails until its sentinel file exists, then succeeds.

    The sentinel is created on the first attempt, so attempt 1 fails and
    attempt 2 returns — exactly one retry recovers it.  ``crash=True``
    fails by killing the worker instead of raising.
    """

    kind: ClassVar[str] = "chaos_flaky"
    token: str
    sentinel: str
    crash: bool = False

    def execute(self):
        if os.path.exists(self.sentinel):
            return {"token": self.token, "recovered": True}
        with open(self.sentinel, "w") as f:
            f.write("seen")
        if self.crash:
            os._exit(3)
        raise RuntimeError(f"flaky {self.token}")

    def describe(self):
        return f"flaky:{self.token}"


def _counter(registry, name):
    family = registry.get(name)
    return 0 if family is None else family.default.value


# -- satellite: progress exceptions must never abort the batch -----------
def test_progress_exception_does_not_abort():
    calls = []

    def progress(done, total, point, cached):
        calls.append(done)
        raise ValueError("broken progress bar")

    registry = MetricRegistry()
    runner = Runner(registry=registry, progress=progress)
    points = [OkPoint(token=t) for t in ("a", "b", "c")]
    results = runner.run(points)
    assert [r["token"] for r in results] == ["a", "b", "c"]
    assert calls == [1, 2, 3]
    assert runner.stats.progress_errors == 3
    assert _counter(registry, "runner_progress_errors_total") == 3


def test_progress_keyboard_interrupt_propagates():
    def progress(done, total, point, cached):
        raise KeyboardInterrupt

    runner = Runner(progress=progress)
    with pytest.raises(KeyboardInterrupt):
        runner.run([OkPoint(token="a")])


# -- retry / quarantine, inline path -------------------------------------
def test_retry_recovers_flaky_point_inline(tmp_path):
    registry = MetricRegistry()
    runner = Runner(registry=registry, retries=2, backoff_s=0.001)
    point = FlakyPoint(token="f", sentinel=str(tmp_path / "seen"))
    results = runner.run([point])
    assert results[0]["recovered"] is True
    assert runner.stats.retries == 1
    assert _counter(registry, "runner_retries_total") == 1


def test_quarantine_isolates_poison_point_inline():
    registry = MetricRegistry()
    runner = Runner(registry=registry, failure_policy="quarantine")
    points = [OkPoint(token="a"), RaisePoint(token="p"), OkPoint(token="b")]
    results = runner.run(points)
    assert results[0] == {"token": "a"}
    assert results[1] is None
    assert results[2] == {"token": "b"}
    assert runner.stats.quarantined == 1
    assert _counter(registry, "runner_quarantined_total") == 1
    (entry,) = runner.quarantined
    assert entry["point"] == "raise:p"
    assert "poison" in entry["error"]
    assert entry["key"] == points[1].key()
    assert entry in runner.meta()["quarantined_points"]


def test_default_raise_behaviour_unchanged():
    with pytest.raises(RunnerError, match="point failed: raise:p"):
        Runner().run([RaisePoint(token="p")])


def test_retries_exhausted_still_raises():
    runner = Runner(retries=2, backoff_s=0.001)
    with pytest.raises(RunnerError, match="point failed: raise:p"):
        runner.run([RaisePoint(token="p")])
    assert runner.stats.retries == 2


def test_backoff_is_deterministic_and_bounded():
    runner = Runner(retries=3, backoff_s=0.05, max_backoff_s=0.2)
    delays = [runner._backoff("deadbeef", n) for n in (1, 2, 3, 4)]
    assert delays == [runner._backoff("deadbeef", n) for n in (1, 2, 3, 4)]
    assert all(0 < d <= 0.2 for d in delays)
    assert runner._backoff("deadbeef", 1) != runner._backoff("cafe", 1)


def test_runner_parameter_validation():
    with pytest.raises(ValueError):
        Runner(retries=-1)
    with pytest.raises(ValueError):
        Runner(timeout_s=0)
    with pytest.raises(ValueError):
        Runner(failure_policy="retry-forever")


# -- pool-path failures raise identically --------------------------------
@pytest.mark.chaos
def test_pool_failure_raises_runner_error_by_default():
    points = [OkPoint(token="a"), RaisePoint(token="p"),
              OkPoint(token="b"), OkPoint(token="c")]
    with pytest.raises(RunnerError, match="point failed: raise:p"):
        Runner(workers=2).run(points)


# -- worker crash: pool respawn + isolation replay -----------------------
@pytest.mark.chaos
def test_worker_crash_quarantines_culprit_and_resolves_innocents():
    registry = MetricRegistry()
    runner = Runner(workers=2, registry=registry,
                    failure_policy="quarantine", backoff_s=0.001)
    points = [OkPoint(token="a"), CrashPoint(token="x"),
              OkPoint(token="b"), OkPoint(token="c")]
    results = runner.run(points)
    assert results[0] == {"token": "a"}
    assert results[1] is None
    assert results[2] == {"token": "b"}
    assert results[3] == {"token": "c"}
    assert runner.stats.pool_respawns >= 1
    assert runner.stats.quarantined == 1
    assert runner.quarantined[0]["point"] == "crash:x"
    assert _counter(registry, "runner_pool_respawns_total") >= 1
    # Innocents were replayed, never charged an attempt.
    assert runner.stats.retries == 0


@pytest.mark.chaos
@pytest.mark.slow
def test_worker_crash_retry_recovers(tmp_path):
    runner = Runner(workers=2, retries=1, backoff_s=0.001)
    points = [
        OkPoint(token="a"),
        FlakyPoint(token="f", sentinel=str(tmp_path / "seen"), crash=True),
        OkPoint(token="b"),
    ]
    results = runner.run(points)
    assert results[0] == {"token": "a"}
    assert results[1]["recovered"] is True
    assert results[2] == {"token": "b"}
    # The crasher recovered either on its isolation replay (uncharged)
    # or on a charged retry, depending on which futures were in flight
    # when the pool broke; either way the pool respawned and the batch
    # completed without losing an innocent.
    assert runner.stats.retries <= 1
    assert runner.stats.pool_respawns >= 1


# -- watchdog timeouts ---------------------------------------------------
@pytest.mark.chaos
@pytest.mark.slow
def test_hung_point_is_killed_and_quarantined():
    registry = MetricRegistry()
    runner = Runner(workers=2, registry=registry, timeout_s=0.5,
                    failure_policy="quarantine")
    points = [HangPoint(token="h"), OkPoint(token="a"), OkPoint(token="b")]
    start = time.perf_counter()
    results = runner.run(points)
    elapsed = time.perf_counter() - start
    assert elapsed < 30  # nowhere near the 60 s hang
    assert results[0] is None
    assert results[1] == {"token": "a"}
    assert results[2] == {"token": "b"}
    assert runner.stats.timeouts == 1
    assert runner.stats.quarantined == 1
    assert runner.quarantined[0]["point"] == "hang:h"
    assert "timeout" in runner.quarantined[0]["error"].lower()
    assert _counter(registry, "runner_timeouts_total") == 1


@pytest.mark.chaos
@pytest.mark.slow
def test_hung_point_timeout_raises_by_default():
    runner = Runner(workers=2, timeout_s=0.5)
    with pytest.raises(RunnerError, match="point failed: hang:h"):
        runner.run([HangPoint(token="h"), OkPoint(token="a")])
    assert runner.stats.timeouts == 1


# -- graceful drain on interrupt -----------------------------------------
@pytest.mark.chaos
def test_keyboard_interrupt_drains_pool():
    def progress(done, total, point, cached):
        raise KeyboardInterrupt

    runner = Runner(workers=2, progress=progress)
    points = [OkPoint(token=t) for t in ("a", "b", "c", "d")]
    with pytest.raises(KeyboardInterrupt):
        runner.run(points)
    # The driver killed its pool on the way out; a fresh run still works.
    assert Runner(workers=2).run(points[:2]) == [
        {"token": "a"}, {"token": "b"}]
