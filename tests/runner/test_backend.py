"""The unified ExecutionBackend surface and its deprecation shims."""

import warnings
from dataclasses import dataclass
from typing import ClassVar

import pytest

from repro.runner import (
    ExecutionBackend,
    ResultCache,
    Runner,
    run_points,
)
from repro.runner.simpoint import SimPoint


@dataclass(frozen=True)
class TokenPoint(SimPoint):
    kind: ClassVar[str] = "backend_token"
    token: str

    def execute(self):
        return {"token": self.token}

    def describe(self):
        return f"token:{self.token}"


def test_runner_satisfies_protocol():
    assert isinstance(Runner(workers=0), ExecutionBackend)


def test_scheduler_accepts_any_backend(tmp_path):
    """The scheduler wraps an injected backend in a per-job view that
    delegates everything to the shared backend underneath."""
    from repro.service import JobQueue, Scheduler

    backend = Runner(workers=0)
    scheduler = Scheduler(JobQueue(tmp_path / "state"),
                          tmp_path / "results", backend=backend)
    runner = scheduler._runner(job=None, policy="quarantine")
    assert runner._backend is backend
    assert isinstance(runner, ExecutionBackend)
    # Attribute access falls through to the shared backend.
    assert runner.workers == backend.workers
    assert runner.meta() == backend.meta()
    assert runner.run_points([TokenPoint(token="x")]) == [{"token": "x"}]


def test_run_points_overrides_are_batch_scoped():
    runner = Runner(workers=0, retries=2, timeout_s=30.0)
    seen = []
    values = runner.run_points(
        [TokenPoint(token="a")], retries=0, timeout_s=1.0,
        on_progress=lambda done, total, point, cached:
            seen.append((done, total, cached)))
    assert values == [{"token": "a"}]
    assert seen == [(1, 1, False)]
    # The configured values survive the batch override.
    assert (runner.retries, runner.timeout_s, runner.progress) \
        == (2, 30.0, None)


def test_module_run_points_keyword_only_spelling():
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # the new spelling must not warn
        values = run_points([TokenPoint(token="a")], workers=0)
    assert values == [{"token": "a"}]


def test_module_run_points_legacy_positionals_warn(tmp_path):
    import repro.runner.pool as pool

    pool._LEGACY_WARNED.discard("run_points:positional")
    cache = ResultCache(directory=tmp_path / "cache")
    with pytest.warns(DeprecationWarning, match="positional"):
        values = run_points([TokenPoint(token="a")], 0, cache)
    assert values == [{"token": "a"}]
    assert cache.stats.stores == 1
    # Once per process: the second call is silent.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        run_points([TokenPoint(token="b")], 0, cache)


def test_module_run_points_legacy_keywords_shim():
    from repro.bench import compat

    compat._WARNED.discard(("_run_points", "progress"))
    seen = []
    with pytest.warns(DeprecationWarning, match="on_progress"):
        run_points([TokenPoint(token="a")], workers=0,
                   progress=lambda done, total, point, cached:
                       seen.append(done))
    assert seen == [1]


def test_module_run_points_rejects_both_spellings():
    with pytest.raises(TypeError, match="progress"):
        run_points([TokenPoint(token="a")], workers=0,
                   progress=lambda *a: None, on_progress=lambda *a: None)


def test_service_client_timeout_shim():
    from repro.bench import compat
    from repro.service import Service, ServiceClient, ServiceConfig

    compat._WARNED.discard(("ServiceClient.__init__", "timeout"))
    import tempfile
    from pathlib import Path

    with tempfile.TemporaryDirectory() as td:
        service = Service(ServiceConfig(state_dir=Path(td)))
        with pytest.warns(DeprecationWarning, match="timeout_s"):
            client = ServiceClient(app=service.app, timeout=7.0)
        assert client.timeout_s == 7.0
