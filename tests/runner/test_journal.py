"""Tests for the append-only JSONL run journal behind `repro run --resume`."""

import json

from repro.runner import RunJournal


def test_append_and_events_roundtrip(tmp_path):
    journal = RunJournal(tmp_path / "journal.jsonl")
    journal.append("sweep_start", experiments=["E1", "E2"], variant="quick")
    journal.append("experiment_start", experiment="E1", variant="quick")
    journal.append("experiment_done", experiment="E1", variant="quick",
                   elapsed_s=1.25)
    events = journal.events()
    assert [e["event"] for e in events] == [
        "sweep_start", "experiment_start", "experiment_done"]
    assert events[0]["experiments"] == ["E1", "E2"]
    assert events[2]["elapsed_s"] == 1.25


def test_missing_journal_is_empty(tmp_path):
    journal = RunJournal(tmp_path / "nope.jsonl")
    assert journal.events() == []
    assert journal.completed() == set()


def test_truncated_last_line_is_dropped(tmp_path):
    journal = RunJournal(tmp_path / "journal.jsonl")
    journal.append("experiment_done", experiment="E1", variant="quick")
    journal.append("experiment_done", experiment="E2", variant="quick")
    # Simulate a writer killed mid-append: cut the final line in half.
    text = journal.path.read_text()
    journal.path.write_text(text[: len(text) - 18])
    events = journal.events()
    assert [e.get("experiment") for e in events] == ["E1"]
    assert journal.completed("quick") == {"E1"}


def test_garbage_line_is_skipped_not_fatal(tmp_path):
    journal = RunJournal(tmp_path / "journal.jsonl")
    journal.append("experiment_done", experiment="E1", variant="full")
    with open(journal.path, "a") as f:
        f.write("}{ definitely not json\n")
        f.write(json.dumps({"event": "experiment_done",
                            "experiment": "E2", "variant": "full"}) + "\n")
        f.write('"a bare string, not an object"\n')
    assert journal.completed("full") == {"E1", "E2"}


def test_completed_filters_by_variant(tmp_path):
    journal = RunJournal(tmp_path / "journal.jsonl")
    journal.append("experiment_done", experiment="E1", variant="quick")
    journal.append("experiment_done", experiment="E2", variant="full")
    journal.append("experiment_failed", experiment="E3", variant="quick")
    assert journal.completed("quick") == {"E1"}
    assert journal.completed("full") == {"E2"}
    assert journal.completed() == {"E1", "E2"}  # no filter: any variant


def test_reset_removes_the_file(tmp_path):
    journal = RunJournal(tmp_path / "journal.jsonl")
    journal.append("sweep_start", variant="quick")
    assert journal.path.exists()
    journal.reset()
    assert not journal.path.exists()
    journal.reset()  # idempotent
    assert journal.events() == []


def test_lines_are_single_sorted_json_objects(tmp_path):
    journal = RunJournal(tmp_path / "journal.jsonl")
    journal.append("experiment_done", experiment="E9", variant="full",
                   path="bench_results/e9.json")
    (line,) = journal.path.read_text().splitlines()
    record = json.loads(line)
    assert list(record) == sorted(record)
    assert record["event"] == "experiment_done"


# -- compaction (`repro journal compact`) ---------------------------------

def test_compact_keeps_latest_done_per_experiment(tmp_path):
    from repro.runner.journal import compact_run_journal

    journal = RunJournal(tmp_path / "journal.jsonl")
    journal.append("sweep_start", experiments=["E1", "E2"], variant="quick")
    for _ in range(3):  # three full sweeps of the same pair
        for exp in ("E1", "E2"):
            journal.append("experiment_start", experiment=exp,
                           variant="quick")
            journal.append("experiment_done", experiment=exp,
                           variant="quick", elapsed_s=1.0)
        journal.append("sweep_done", variant="quick", failed=[])
    before, after = compact_run_journal(journal)
    assert before == 16 and after == 3  # sweep marker + one done each
    assert journal.completed("quick") == {"E1", "E2"}


def test_compact_preserves_resume_semantics(tmp_path):
    from repro.runner.journal import compact_run_journal

    journal = RunJournal(tmp_path / "journal.jsonl")
    journal.append("experiment_start", experiment="E1", variant="quick")
    journal.append("experiment_done", experiment="E1", variant="quick")
    journal.append("experiment_start", experiment="E2", variant="quick")
    journal.append("experiment_failed", experiment="E2", variant="quick",
                   error="boom")
    journal.append("experiment_done", experiment="E1", variant="full")
    compact_run_journal(journal)
    # Resume must see exactly what it saw before the rewrite: E1 done at
    # both variants, E2 still open (its failure record kept).
    assert journal.completed("quick") == {"E1"}
    assert journal.completed("full") == {"E1"}
    events = journal.events()
    assert any(e["event"] == "experiment_failed" for e in events)


def test_compact_is_idempotent(tmp_path):
    from repro.runner.journal import compact_run_journal

    journal = RunJournal(tmp_path / "journal.jsonl")
    for exp in ("E1", "E2", "E3"):
        journal.append("experiment_done", experiment=exp, variant="quick")
    compact_run_journal(journal)
    first = journal.path.read_text()
    before, after = compact_run_journal(journal)
    assert before == after == 3
    assert journal.path.read_text() == first


def test_rewrite_is_atomic_and_leaves_no_tmp(tmp_path):
    journal = RunJournal(tmp_path / "journal.jsonl")
    journal.append("experiment_done", experiment="E1", variant="quick")
    written = journal.rewrite([{"event": "experiment_done",
                                "experiment": "E9", "variant": "quick"}])
    assert written == 1
    assert journal.completed("quick") == {"E9"}
    assert list(tmp_path.glob("*.tmp")) == []
