"""Gate for prefix memoization (:mod:`repro.runner.prefix`).

A memoized sweep must be indistinguishable from running every point
fresh: same stats, same timeline events, same runtime stats, same link
utilization — the resume contract's comparisons, kernel event counts
excluded.  The tests also pin the planner (who groups with whom), the
accounting (how many iterations were actually simulated), the
:class:`~repro.runner.prefix.PrefixStore` round-trip, and result-cache
integration.
"""

import pickle

import pytest

from repro.core import paper_default_config, paper_tuned_config
from repro.core.sweep import clear_profile_cache
from repro.faults import FaultSchedule, StragglerGPU
from repro.runner import (
    PrefixStore,
    ResultCache,
    Runner,
    TrainPoint,
    prefix_run,
    run_with_prefix_memo,
)
from repro.runner.prefix import ladder_key, memoizable, plan_groups


def assert_measurement_equal(memo, fresh):
    """The resume-contract comparison: everything but kernel counters."""
    assert pickle.dumps(memo.stats) == pickle.dumps(fresh.stats)
    assert pickle.dumps(memo.runtime_stats) == \
        pickle.dumps(fresh.runtime_stats)
    assert pickle.dumps(memo.link_utilization) == \
        pickle.dumps(fresh.link_utilization)
    assert len(memo.timeline.events) == len(fresh.timeline.events)
    for ours, theirs in zip(memo.timeline.events, fresh.timeline.events):
        assert pickle.dumps(ours) == pickle.dumps(theirs)


def fresh_result(point):
    clear_profile_cache()
    return point.execute()


def test_plan_groups_partitions_ladders_from_singletons():
    tuned, default = paper_tuned_config(), paper_default_config()
    ladder = [TrainPoint(gpus=3, config=tuned, iterations=n, seed=1)
              for n in (2, 4)]
    other_seed = TrainPoint(gpus=3, config=tuned, iterations=2, seed=2)
    other_cfg = TrainPoint(gpus=3, config=default, iterations=2, seed=1)
    faulty = TrainPoint(
        gpus=3, config=tuned, iterations=8, seed=1,
        schedule=FaultSchedule.of(
            StragglerGPU(rank=1, start_s=0.1, duration_s=1.0, slowdown=2.0)
        ),
    )
    points = [ladder[0], other_seed, ladder[1], other_cfg, faulty]
    groups, singles = plan_groups(points)
    assert len(groups) == 1
    (members,) = groups.values()
    assert [idx for idx, _ in members] == [0, 2]
    assert singles == [1, 3, 4]
    # Knob hash identity: ladder members share it, others don't.
    assert ladder_key(ladder[0]) == ladder_key(ladder[1])
    assert ladder_key(other_seed) != ladder_key(ladder[0])
    assert not memoizable(faulty)


def test_memoized_ladder_matches_fresh_runs():
    tuned = paper_tuned_config()
    points = [TrainPoint(gpus=3, config=tuned, iterations=n, seed=1)
              for n in (2, 3, 5)]
    results, stats = prefix_run(points)
    assert stats.groups == 1
    assert stats.memoized_points == 2
    # One 5-iteration run replaces 2 + 3 + 5 reference iterations.
    assert stats.iterations_simulated == 5
    assert stats.iterations_reference == 10
    for point, memo in zip(points, results):
        assert_measurement_equal(memo, fresh_result(point))


def test_duplicate_points_share_one_result():
    tuned = paper_tuned_config()
    a = TrainPoint(gpus=2, config=tuned, iterations=2, seed=3)
    b = TrainPoint(gpus=2, config=tuned, iterations=4, seed=3)
    results = run_with_prefix_memo([a, b, a])
    assert results[0] is results[2]
    assert_measurement_equal(results[0], fresh_result(a))


def test_non_memoizable_points_run_fresh():
    tuned = paper_tuned_config()
    traced = TrainPoint(gpus=2, config=tuned, iterations=2, seed=0,
                        trace="spans")
    telemetered = TrainPoint(gpus=2, config=tuned, iterations=3, seed=0,
                             telemetry=True)
    assert not memoizable(traced)
    assert not memoizable(telemetered)
    results, stats = prefix_run([traced, telemetered])
    assert stats.groups == 0 and stats.memoized_points == 0
    assert results[0].trace is not None
    assert results[1].telemetry is not None


def test_prefix_store_roundtrip_extends_ladders(tmp_path):
    tuned = paper_tuned_config()
    store = PrefixStore(tmp_path / "prefixes")
    first = [TrainPoint(gpus=3, config=tuned, iterations=n, seed=7)
             for n in (2, 4)]
    _, stats1 = prefix_run(first, store=store)
    assert stats1.store_hits == 0
    assert stats1.iterations_simulated == 4
    # A later sweep extends the same ladder: the stored boundary-2
    # checkpoint seeds everything, including the new largest member.
    second = first + [TrainPoint(gpus=3, config=tuned, iterations=6, seed=7)]
    results, stats2 = prefix_run(second, store=store)
    assert stats2.store_hits >= 2
    # Resume from boundary 2 → only 4 new iterations for the it=6 point.
    assert stats2.iterations_simulated == 4
    for point, memo in zip(second, results):
        assert_measurement_equal(memo, fresh_result(point))


def test_memoized_results_land_in_the_result_cache(tmp_path):
    tuned = paper_tuned_config()
    cache = ResultCache(tmp_path / "cache")
    runner = Runner(cache=cache)
    points = [TrainPoint(gpus=2, config=tuned, iterations=n, seed=9)
              for n in (2, 4)]
    run_with_prefix_memo(points, runner=runner)
    # A later plain (non-memoized) run of the same points is all hits.
    runner2 = Runner(cache=cache)
    replay = runner2.run(points)
    assert runner2.stats.cache_hits == len(points)
    for point, memo in zip(points, replay):
        assert_measurement_equal(memo, fresh_result(point))


def test_fallback_when_capture_skipped(monkeypatch):
    """A ladder whose boundary captures never land (e.g. non-quiescent
    barriers) still returns correct results via fresh-run fallback."""
    import dataclasses

    import repro.core.sweep as sweep_mod

    real = sweep_mod.measure_training

    def no_captures(*args, **kwargs):
        m = real(*args, **kwargs)
        return dataclasses.replace(m, checkpoints=None)

    monkeypatch.setattr(sweep_mod, "measure_training", no_captures)
    tuned = paper_tuned_config()
    points = [TrainPoint(gpus=2, config=tuned, iterations=n, seed=11)
              for n in (2, 4)]
    results, stats = prefix_run(points)
    monkeypatch.undo()
    assert stats.memoized_points == 0
    # 4 for the ladder run + 2 for the fallback fresh run of it=2.
    assert stats.iterations_simulated == 6
    for point, memo in zip(points, results):
        assert_measurement_equal(memo, fresh_result(point))
