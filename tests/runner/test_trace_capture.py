"""Runner trace capture: ``trace_dir`` exports spans per resolved point."""

import json
import os
import time

from repro.core import paper_tuned_config
from repro.runner import ResultCache, Runner, TrainPoint
from repro.runner.cache import sweep_stale_tmp
from repro.trace import load_spans


def _traced_point(gpus=2):
    return TrainPoint(gpus=gpus, config=paper_tuned_config(), iterations=2,
                      jitter_std=0.0, trace="spans")


def test_trace_dir_writes_one_file_per_traced_point(tmp_path):
    trace_dir = tmp_path / "traces"
    runner = Runner(trace_dir=trace_dir)
    points = [_traced_point(2), _traced_point(3)]
    runner.run(points)
    files = sorted(trace_dir.glob("*.trace.json"))
    assert [f.name for f in files] == sorted(
        f"{p.key()[:16]}.trace.json" for p in points)
    assert runner.stats.traces_captured == 2
    assert runner.stats.as_dict()["traces_captured"] == 2
    # The exported file is the span format load_spans understands.
    rec = load_spans(files[0])
    assert rec.by_cat("ITERATION")


def test_untraced_points_write_nothing(tmp_path):
    trace_dir = tmp_path / "traces"
    runner = Runner(trace_dir=trace_dir)
    runner.run([TrainPoint(gpus=2, config=paper_tuned_config(),
                           iterations=2, jitter_std=0.0)])
    assert not trace_dir.exists() or not list(trace_dir.iterdir())
    assert runner.stats.traces_captured == 0


def test_cache_hits_still_capture(tmp_path):
    """A warm resume re-materializes trace files from cached results."""
    cache = ResultCache(directory=tmp_path / "cache")
    point = _traced_point()
    Runner(cache=cache).run([point])  # warm the cache, no capture
    trace_dir = tmp_path / "traces"
    runner = Runner(cache=cache, trace_dir=trace_dir)
    runner.run([point])
    assert runner.stats.cache_hits == 1
    assert (trace_dir / f"{point.key()[:16]}.trace.json").exists()


def test_capture_sweeps_stale_tmp_files(tmp_path):
    trace_dir = tmp_path / "traces"
    trace_dir.mkdir()
    stale = trace_dir / "deadbeef.trace.json.999.tmp"
    stale.write_text("{}")
    old = time.time() - 3600
    os.utime(stale, (old, old))
    fresh = trace_dir / "cafef00d.trace.json.999.tmp"
    fresh.write_text("{}")
    Runner(trace_dir=trace_dir).run([_traced_point()])
    assert not stale.exists(), "stale temp file survived the sweep"
    assert fresh.exists(), "fresh temp file must not be swept"


def test_resumed_run_exports_identical_trace_file(tmp_path):
    """Checkpoint/resume × trace capture: resuming a traced run mid-way
    and materializing it through ``trace_dir`` yields the byte-identical
    trace file the uninterrupted sweep writes."""
    from repro.checkpoint import CheckpointPlan, resume_training
    from repro.core import measure_training

    point = TrainPoint(gpus=3, config=paper_tuned_config(), iterations=5,
                       jitter_std=0.03, trace="spans")
    baseline_dir = tmp_path / "baseline"
    Runner(trace_dir=baseline_dir).run([point])
    trace_file = f"{point.key()[:16]}.trace.json"

    # Same point, interrupted at boundary 2 with the recorder attached.
    interrupted = measure_training(
        gpus=point.gpus, config=point.config, iterations=point.iterations,
        jitter_std=point.jitter_std, trace=point.trace,
        checkpoint=CheckpointPlan(every=1, stop_at=2))
    assert interrupted.interrupted and interrupted.checkpoint is not None
    resumed = resume_training(interrupted.checkpoint)
    assert resumed.trace is not None

    # Seed a cache with the resumed measurement under the point's own
    # key; the runner's cache-hit path re-materializes its trace file.
    cache = ResultCache(directory=tmp_path / "cache")
    cache.put(point.key(), resumed)
    resumed_dir = tmp_path / "resumed"
    runner = Runner(cache=cache, trace_dir=resumed_dir)
    runner.run([point])
    assert runner.stats.cache_hits == 1 and runner.stats.traces_captured == 1
    assert ((resumed_dir / trace_file).read_bytes()
            == (baseline_dir / trace_file).read_bytes())


def test_sweep_stale_tmp_function(tmp_path):
    """The module-level sweeper shared with the result cache."""
    (tmp_path / "a.trace.json.1.tmp").write_text("x")
    old = time.time() - 3600
    os.utime(tmp_path / "a.trace.json.1.tmp", (old, old))
    (tmp_path / "b.pkl.2.tmp").write_text("x")
    os.utime(tmp_path / "b.pkl.2.tmp", (old, old))
    (tmp_path / "keep.trace.json").write_text("{}")
    assert sweep_stale_tmp(tmp_path) == 2
    assert (tmp_path / "keep.trace.json").exists()
    # A missing directory sweeps nothing.
    assert sweep_stale_tmp(tmp_path / "absent") == 0
