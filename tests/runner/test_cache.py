"""Tests for the persistent content-addressed result cache."""

import os
import pickle

import pytest

from repro.runner import ResultCache

KEY_A = "a" * 64
KEY_B = "b" * 64
KEY_C = "c" * 64


@pytest.fixture
def cache(tmp_path):
    return ResultCache(directory=tmp_path / "cache")


def test_miss_then_hit(cache):
    assert cache.get(KEY_A) is None
    cache.put(KEY_A, {"v": 1})
    assert cache.get(KEY_A) == {"v": 1}
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1
    assert cache.stats.stores == 1


def test_hit_is_bit_identical(cache):
    value = {"floats": [0.1, 0.2, 3.0e-7], "nested": {"t": (1, 2)}}
    cache.put(KEY_A, value)
    roundtripped = cache.get(KEY_A)
    assert pickle.dumps(roundtripped) == pickle.dumps(value)


def test_malformed_key_rejected(cache):
    for bad in ("", "xyz!", "ABC", "../escape"):
        with pytest.raises(ValueError):
            cache.get(bad)


def test_corrupt_entry_is_a_miss_and_deleted(cache):
    path = cache.put(KEY_A, {"v": 1})
    path.write_bytes(b"not a pickle")
    assert cache.get(KEY_A) is None
    assert not path.exists()
    # The next put works again.
    cache.put(KEY_A, {"v": 2})
    assert cache.get(KEY_A) == {"v": 2}


def test_lru_eviction_drops_oldest(cache):
    cache.max_bytes = 1  # force eviction on every put
    p_a = cache.put(KEY_A, "x" * 100)
    p_b = cache.put(KEY_B, "y" * 100)
    # The entry just written is never evicted; the older one goes.
    assert not p_a.exists()
    assert p_b.exists()
    assert cache.stats.evictions == 1


def test_hit_refreshes_recency(cache, tmp_path):
    cache.put(KEY_A, "a")
    cache.put(KEY_B, "b")
    # Make A look stale, then touch it via a hit.
    path_a = cache.directory / f"{KEY_A}.pkl"
    os.utime(path_a, (1, 1))
    assert cache.entries()[0][0] == path_a
    cache.get(KEY_A)
    assert cache.entries()[0][0] != path_a


def test_clear_and_snapshot(cache):
    cache.put(KEY_A, 1)
    cache.put(KEY_B, 2)
    snap = cache.snapshot()
    assert snap["entries"] == 2
    assert snap["total_bytes"] > 0
    assert snap["stores"] == 2
    assert "salt" in snap
    assert cache.clear() == 2
    assert cache.snapshot()["entries"] == 0


def test_missing_directory_is_all_misses(tmp_path):
    cache = ResultCache(directory=tmp_path / "never-created")
    assert cache.get(KEY_A) is None
    assert cache.snapshot()["entries"] == 0
    assert cache.clear() == 0


def test_max_bytes_must_be_positive(tmp_path):
    with pytest.raises(ValueError):
        ResultCache(directory=tmp_path, max_bytes=0)


def test_zero_byte_entry_is_a_miss_and_deleted(cache):
    path = cache.put(KEY_A, {"v": 1})
    path.write_bytes(b"")
    assert cache.get(KEY_A) is None
    assert not path.exists()
    assert cache.stats.misses == 1
    # Self-healed: the slot accepts a fresh store.
    cache.put(KEY_A, {"v": 2})
    assert cache.get(KEY_A) == {"v": 2}


def test_truncated_entry_is_a_miss_and_deleted(cache):
    path = cache.put(KEY_A, {"values": list(range(1000))})
    blob = path.read_bytes()
    path.write_bytes(blob[: len(blob) // 2])  # torn write mid-file
    assert cache.get(KEY_A) is None
    assert not path.exists()
    assert cache.stats.misses == 1


def test_stale_tmp_files_swept_on_put(cache):
    cache.directory.mkdir(parents=True, exist_ok=True)
    stale = cache.directory / f"{KEY_B}.pkl.12345.tmp"
    stale.write_bytes(b"orphaned by a dead writer")
    os.utime(stale, (1, 1))  # ancient
    fresh = cache.directory / f"{KEY_C}.pkl.12346.tmp"
    fresh.write_bytes(b"another writer, mid-store right now")
    cache.put(KEY_A, {"v": 1})
    assert not stale.exists()
    assert fresh.exists()  # recent tmp files belong to live writers


def test_put_holds_advisory_lock(cache):
    pytest.importorskip("fcntl")
    cache.put(KEY_A, {"v": 1})
    assert (cache.directory / ".lock").exists()
    # Lock files are not cache entries.
    assert all(p.suffix == ".pkl" for p, _, _ in cache.entries())


def test_concurrent_style_interleaved_puts(cache):
    # Two instances sharing a directory never corrupt each other.
    other = ResultCache(directory=cache.directory)
    cache.put(KEY_A, "from-first")
    other.put(KEY_B, "from-second")
    other.put(KEY_A, "overwritten")
    assert cache.get(KEY_A) == "overwritten"
    assert cache.get(KEY_B) == "from-second"
    assert list(cache.directory.glob("*.tmp")) == []
