"""Tests for the persistent content-addressed result cache."""

import os
import pickle

import pytest

from repro.runner import ResultCache

KEY_A = "a" * 64
KEY_B = "b" * 64
KEY_C = "c" * 64


@pytest.fixture
def cache(tmp_path):
    return ResultCache(directory=tmp_path / "cache")


def test_miss_then_hit(cache):
    assert cache.get(KEY_A) is None
    cache.put(KEY_A, {"v": 1})
    assert cache.get(KEY_A) == {"v": 1}
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1
    assert cache.stats.stores == 1


def test_hit_is_bit_identical(cache):
    value = {"floats": [0.1, 0.2, 3.0e-7], "nested": {"t": (1, 2)}}
    cache.put(KEY_A, value)
    roundtripped = cache.get(KEY_A)
    assert pickle.dumps(roundtripped) == pickle.dumps(value)


def test_malformed_key_rejected(cache):
    for bad in ("", "xyz!", "ABC", "../escape"):
        with pytest.raises(ValueError):
            cache.get(bad)


def test_corrupt_entry_is_a_miss_and_deleted(cache):
    path = cache.put(KEY_A, {"v": 1})
    path.write_bytes(b"not a pickle")
    assert cache.get(KEY_A) is None
    assert not path.exists()
    # The next put works again.
    cache.put(KEY_A, {"v": 2})
    assert cache.get(KEY_A) == {"v": 2}


def test_lru_eviction_drops_oldest(cache):
    cache.max_bytes = 1  # force eviction on every put
    p_a = cache.put(KEY_A, "x" * 100)
    p_b = cache.put(KEY_B, "y" * 100)
    # The entry just written is never evicted; the older one goes.
    assert not p_a.exists()
    assert p_b.exists()
    assert cache.stats.evictions == 1


def test_hit_refreshes_recency(cache, tmp_path):
    cache.put(KEY_A, "a")
    cache.put(KEY_B, "b")
    # Make A look stale, then touch it via a hit.
    path_a = cache.directory / f"{KEY_A}.pkl"
    os.utime(path_a, (1, 1))
    assert cache.entries()[0][0] == path_a
    cache.get(KEY_A)
    assert cache.entries()[0][0] != path_a


def test_clear_and_snapshot(cache):
    cache.put(KEY_A, 1)
    cache.put(KEY_B, 2)
    snap = cache.snapshot()
    assert snap["entries"] == 2
    assert snap["total_bytes"] > 0
    assert snap["stores"] == 2
    assert "salt" in snap
    assert cache.clear() == 2
    assert cache.snapshot()["entries"] == 0


def test_missing_directory_is_all_misses(tmp_path):
    cache = ResultCache(directory=tmp_path / "never-created")
    assert cache.get(KEY_A) is None
    assert cache.snapshot()["entries"] == 0
    assert cache.clear() == 0


def test_max_bytes_must_be_positive(tmp_path):
    with pytest.raises(ValueError):
        ResultCache(directory=tmp_path, max_bytes=0)
