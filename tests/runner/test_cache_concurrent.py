"""Concurrent hammering of one cache directory: threads + processes.

The service scheduler's thread pool and any number of external CLI
processes can share a single cache directory.  This drives both shapes
at once and asserts the invariants the exactly-once machinery relies
on: no corrupt or zero-byte entries, no stray temp files, and hit
accounting that adds up.
"""

import hashlib
import pickle
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

from repro.runner import ResultCache

KEYS = [hashlib.sha256(f"point-{i}".encode()).hexdigest()
        for i in range(8)]
ROUNDS = 25


def _value(key: str) -> dict:
    return {"key": key, "payload": [0.125] * 64}


def _hammer_inprocess(cache: ResultCache, worker: int) -> int:
    """Thread worker: interleave puts and gets, count observed hits."""
    hits = 0
    for round_no in range(ROUNDS):
        key = KEYS[(worker + round_no) % len(KEYS)]
        if cache.get(key) is not None:
            hits += 1
        else:
            cache.put(key, _value(key))
    return hits


def _hammer_subprocess(directory: str, worker: int) -> int:
    """Process worker: a fresh ResultCache on the same directory."""
    cache = ResultCache(directory=directory)
    return _hammer_inprocess(cache, worker)


def test_threads_and_processes_share_one_cache_dir(tmp_path):
    directory = tmp_path / "cache"
    cache = ResultCache(directory=directory)

    with ThreadPoolExecutor(max_workers=4) as threads, \
            ProcessPoolExecutor(max_workers=2) as processes:
        thread_work = [threads.submit(_hammer_inprocess, cache, i)
                       for i in range(4)]
        process_work = [
            processes.submit(_hammer_subprocess, str(directory), i)
            for i in range(2)]
        thread_hits = sum(f.result() for f in thread_work)
        process_hits = sum(f.result() for f in process_work)

    # Every key ends up present, readable and non-empty.
    paths = sorted(directory.glob("*.pkl"))
    assert [p.name for p in paths] == sorted(f"{k}.pkl" for k in KEYS)
    for path in paths:
        assert path.stat().st_size > 0
        value = pickle.loads(path.read_bytes())
        assert value == _value(path.name[:-len(".pkl")])

    # No torn writes left behind: the put protocol is tmp + rename.
    assert list(directory.glob("*.tmp")) == []

    # Hit accounting: the shared in-process cache object saw every
    # thread-side hit; totals must add up against misses.
    assert cache.stats.hits >= thread_hits
    assert cache.stats.hits + cache.stats.misses == 4 * ROUNDS
    assert cache.stats.hit_ratio == (
        cache.stats.hits / (cache.stats.hits + cache.stats.misses))
    # Most operations after warm-up are hits across both pools.
    assert thread_hits + process_hits > (6 * ROUNDS) // 2


def test_subprocess_sees_entries_written_by_parent(tmp_path):
    directory = tmp_path / "cache"
    parent = ResultCache(directory=directory)
    for key in KEYS:
        parent.put(key, _value(key))
    with ProcessPoolExecutor(max_workers=1) as pool:
        hits = pool.submit(_hammer_subprocess, str(directory), 0).result()
    assert hits == ROUNDS  # every access in the child is a hit
