"""Tests for the metric registry, families and child semantics."""

import pytest

from repro.telemetry import MetricRegistry
from repro.telemetry.metrics import DEFAULT_BUCKETS


def test_counter_inc_and_default_child():
    r = MetricRegistry()
    c = r.counter("ops_total", "operations")
    c.inc()
    c.inc(2.5)
    assert c.default.value == 3.5


def test_counter_rejects_decrease():
    r = MetricRegistry()
    c = r.counter("ops_total")
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_set_inc_dec():
    r = MetricRegistry()
    g = r.gauge("depth")
    g.set(7)
    g.inc(3)
    g.dec(5)
    assert g.default.value == 5.0


def test_histogram_cumulative_buckets_sum_count():
    r = MetricRegistry()
    h = r.histogram("lat_seconds", buckets=(0.001, 0.01, 0.1))
    for v in (0.0005, 0.005, 0.05, 0.5):
        h.observe(v)
    child = h.default
    # Bounds are sorted with +Inf appended; counts are cumulative.
    assert h.buckets == (0.001, 0.01, 0.1, float("inf"))
    assert child.cumulative() == [1, 2, 3, 4]
    assert child.count == 4
    assert child.sum == pytest.approx(0.5555)


def test_labeled_children_are_distinct():
    r = MetricRegistry()
    c = r.counter("bytes_total", labelnames=("algorithm",))
    c.labels(algorithm="ring").inc(10)
    c.labels(algorithm="tree").inc(1)
    c.labels(algorithm="ring").inc(5)
    assert c.labels(algorithm="ring").value == 15
    assert c.labels(algorithm="tree").value == 1


def test_label_mismatch_raises():
    r = MetricRegistry()
    c = r.counter("bytes_total", labelnames=("algorithm",))
    with pytest.raises(ValueError):
        c.labels(wrong="x")
    with pytest.raises(ValueError):
        c.default.inc()  # labeled family has no unlabeled child


def test_reregistration_same_shape_returns_same_family():
    r = MetricRegistry()
    a = r.counter("x_total", labelnames=("k",))
    b = r.counter("x_total", labelnames=("k",))
    assert a is b


def test_reregistration_conflicts_raise():
    r = MetricRegistry()
    r.counter("x_total")
    with pytest.raises(ValueError):
        r.gauge("x_total")
    with pytest.raises(ValueError):
        r.counter("x_total", labelnames=("k",))


def test_histogram_track_unsupported():
    from repro.telemetry.metrics import MetricFamily

    r = MetricRegistry()
    with pytest.raises(ValueError):
        MetricFamily(r, "histogram", "h", "", (), track=True)
    with pytest.raises(ValueError):
        MetricFamily(r, "summary", "s", "", ())


def test_disabled_registry_is_a_noop():
    r = MetricRegistry()
    c = r.counter("ops_total")
    g = r.gauge("depth")
    h = r.histogram("lat")
    r.enabled = False
    c.inc()
    g.set(9)
    h.observe(1.0)
    assert c.default.value == 0.0
    assert g.default.value == 0.0
    assert h.default.count == 0


def test_clock_stamps_samples_with_simulated_time():
    now = {"t": 0.0}
    r = MetricRegistry(clock=lambda: now["t"])
    c = r.counter("ops_total")
    now["t"] = 4.5
    c.inc()
    assert c.default.last_t == 4.5
    now["t"] = 9.0
    r.bind_clock(lambda: now["t"] * 2)
    c.inc()
    assert c.default.last_t == 18.0


def test_tracked_series_records_every_update():
    now = {"t": 0.0}
    r = MetricRegistry(clock=lambda: now["t"])
    g = r.gauge("depth", track=True)
    for t, v in ((1.0, 3), (2.0, 5), (3.0, 2)):
        now["t"] = t
        g.set(v)
    assert g.default.track == [(1.0, 3.0), (2.0, 5.0), (3.0, 2.0)]


def test_registry_collect_and_lookup():
    r = MetricRegistry()
    r.counter("a_total")
    r.gauge("b")
    assert [f.name for f in r.collect()] == ["a_total", "b"]
    assert "a_total" in r
    assert r.get("b").kind == "gauge"
    assert r.get("missing") is None


def test_default_buckets_end_with_inf():
    assert DEFAULT_BUCKETS[-1] == float("inf")
    assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
