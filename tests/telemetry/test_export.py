"""Exporter tests: the Prometheus round-trip, JSONL, Chrome-trace merge."""

import json

import pytest

from repro.telemetry import (
    MetricRegistry,
    merge_chrome_trace,
    parse_prometheus,
    to_jsonl,
    to_prometheus,
)


def _populated_registry() -> MetricRegistry:
    now = {"t": 0.0}
    r = MetricRegistry(clock=lambda: now["t"])
    ops = r.counter("mpi_allreduce_total", "collectives", labelnames=("algorithm",))
    ops.labels(algorithm="ring").inc(3)
    ops.labels(algorithm="recursive_doubling").inc(1)
    now["t"] = 1.5
    depth = r.gauge("queue_depth", "queued transfers", track=True)
    depth.set(4)
    now["t"] = 2.0
    depth.set(1)
    lat = r.histogram("lat_seconds", "latency", buckets=(0.01, 0.1, 1.0))
    for v in (0.005, 0.05, 0.5, 5.0):
        lat.observe(v)
    return r


def test_prometheus_round_trip():
    r = _populated_registry()
    parsed = parse_prometheus(to_prometheus(r))
    assert parsed["types"] == {
        "mpi_allreduce_total": "counter",
        "queue_depth": "gauge",
        "lat_seconds": "histogram",
    }
    assert parsed["help"]["queue_depth"] == "queued transfers"
    s = parsed["samples"]
    assert s[("mpi_allreduce_total", (("algorithm", "ring"),))] == 3
    assert s[("mpi_allreduce_total", (("algorithm", "recursive_doubling"),))] == 1
    assert s[("queue_depth", ())] == 1
    assert s[("lat_seconds_bucket", (("le", "0.01"),))] == 1
    assert s[("lat_seconds_bucket", (("le", "0.1"),))] == 2
    assert s[("lat_seconds_bucket", (("le", "1"),))] == 3
    assert s[("lat_seconds_bucket", (("le", "+Inf"),))] == 4
    assert s[("lat_seconds_sum", ())] == pytest.approx(5.555)
    assert s[("lat_seconds_count", ())] == 4


def test_prometheus_escapes_label_values():
    r = MetricRegistry()
    c = r.counter("c_total", labelnames=("path",))
    tricky = 'a"b\\c\nd'
    c.labels(path=tricky).inc()
    parsed = parse_prometheus(to_prometheus(r))
    assert parsed["samples"][("c_total", (("path", tricky),))] == 1


def test_jsonl_is_valid_json_per_line_and_complete():
    r = _populated_registry()
    lines = to_jsonl(r).splitlines()
    records = [json.loads(line) for line in lines]
    metrics = [rec for rec in records if rec["event"] == "metric"]
    tracks = [rec for rec in records if rec["event"] == "track"]
    assert {m["metric"] for m in metrics} == {
        "mpi_allreduce_total", "queue_depth", "lat_seconds",
    }
    # Tracked gauge updates appear as individual points with sim time.
    assert [(t["t"], t["value"]) for t in tracks] == [(1.5, 4.0), (2.0, 1.0)]
    hist = next(m for m in metrics if m["metric"] == "lat_seconds")
    assert hist["count"] == 4 and hist["buckets"]["+Inf"] == 4


def test_jsonl_includes_iteration_samples():
    from repro.telemetry import IterationSample

    sample = IterationSample(
        rank=0, iteration=2, start_s=0.0, stall_end_s=0.1,
        forward_end_s=0.5, last_emit_s=1.0, barrier_s=1.2, end_s=1.3,
    )
    lines = to_jsonl(MetricRegistry(), samples=[sample]).splitlines()
    rec = json.loads(lines[-1])
    assert rec["event"] == "iteration"
    assert rec["iteration"] == 2
    assert rec["backward_s"] == pytest.approx(0.5)
    assert rec["wait_s"] == pytest.approx(0.2)


def test_merge_chrome_trace_appends_counter_events():
    from repro.horovod.timeline import PHASES, Timeline

    timeline = Timeline()
    timeline.record("ALLREDUCE", "t0", 0.5, 1.0)
    r = _populated_registry()
    trace = json.loads(merge_chrome_trace(timeline, r))
    counters = [e for e in trace["traceEvents"] if e["ph"] == "C"]
    spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    assert len(spans) == 1
    # The tracked gauge contributes one counter event per update, in µs.
    assert [(c["ts"], c["args"]["queue_depth"]) for c in counters] == [
        (1.5e6, 4.0), (2.0e6, 1.0),
    ]
    # Coherent merged scheme: counters ride a dedicated thread row of the
    # runtime process, metadata names come first, and the non-metadata
    # stream is globally ts-sorted.
    assert all(c["pid"] == 0 and c["tid"] == len(PHASES) for c in counters)
    names = {(e["pid"], e["tid"]): e["args"]["name"]
             for e in trace["traceEvents"] if e["ph"] == "M"
             and e["name"] == "thread_name"}
    assert names[(0, len(PHASES))] == "counters"
    body = [e for e in trace["traceEvents"] if e["ph"] != "M"]
    assert [e["ts"] for e in body] == sorted(e["ts"] for e in body)
    meta_idx = [i for i, e in enumerate(trace["traceEvents"])
                if e["ph"] == "M"]
    assert meta_idx == list(range(len(meta_idx)))


def test_empty_registry_exports():
    r = MetricRegistry()
    assert to_prometheus(r) == "\n"
    assert to_jsonl(r) == ""
    parsed = parse_prometheus(to_prometheus(r))
    assert parsed["samples"] == {}
