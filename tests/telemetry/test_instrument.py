"""End-to-end instrumentation tests over real measured runs."""

import pytest

from repro.core import measure_training, paper_tuned_config
from repro.telemetry import TelemetryProbe


@pytest.fixture(scope="module")
def measured():
    return measure_training(
        6, paper_tuned_config(), iterations=3, telemetry=True
    )


def test_probe_rides_on_measurement(measured):
    assert isinstance(measured.telemetry, TelemetryProbe)


def test_iteration_samples_cover_every_rank_iteration(measured):
    samples = measured.telemetry.iteration_samples
    assert len(samples) == 6 * 3
    assert {(s.rank, s.iteration) for s in samples} == {
        (r, i) for r in range(6) for i in range(3)
    }


def test_sample_instants_are_ordered(measured):
    for s in measured.telemetry.iteration_samples:
        assert (s.start_s <= s.stall_end_s <= s.forward_end_s
                <= s.last_emit_s <= s.barrier_s <= s.end_s)
        assert s.compute_s == pytest.approx(
            s.forward_s + s.backward_s + s.optimizer_s
        )


def test_kernel_and_runtime_metrics_populated(measured):
    r = measured.telemetry.registry
    assert r.get("sim_events_processed_total").default.value > 1000
    assert r.get("hvd_cycles_total").default.value == (
        measured.runtime_stats.cycles
    )
    negotiated = sum(
        c.value for c in r.get("hvd_negotiations_total").children()
    )
    assert negotiated == measured.runtime_stats.negotiations
    cached = r.get("hvd_negotiations_total").labels(cached="yes").value
    assert cached == measured.runtime_stats.cache_hits
    assert r.get("train_iterations_total").default.value == 18
    # Allreduce accounting covers the runtime's reduced bytes (wire bytes).
    reduced = sum(
        c.value for c in r.get("mpi_allreduce_bytes_total").children()
    )
    assert reduced > 0
    fused = sum(
        c.count for c in r.get("hvd_fusion_tensors_per_group").children()
    )
    assert fused == measured.runtime_stats.fused_ops


def test_link_metrics_match_utilization_report(measured):
    r = measured.telemetry.registry
    for name, entry in measured.link_utilization.items():
        assert r.get("link_bytes_total").labels(type=name).value == (
            entry["bytes"]
        )
        assert r.get("link_mean_utilization").labels(type=name).value == (
            pytest.approx(entry["mean_utilization"])
        )


def test_phase_seconds_match_samples(measured):
    r = measured.telemetry.registry
    samples = measured.telemetry.iteration_samples
    phase = r.get("train_phase_seconds_total")
    assert phase.labels(phase="forward").value == pytest.approx(
        sum(s.forward_s for s in samples)
    )
    assert phase.labels(phase="allreduce_wait").value == pytest.approx(
        sum(s.wait_s for s in samples)
    )


def test_instrumentation_is_observation_only(measured):
    """The acceptance bound is <5% throughput change; simulated time is
    in fact bit-identical with the probe attached."""
    bare = measure_training(6, paper_tuned_config(), iterations=3)
    assert bare.images_per_second == measured.images_per_second
    assert bare.stats.iteration_seconds == measured.stats.iteration_seconds


def test_existing_probe_can_be_passed_in():
    probe = TelemetryProbe()
    m = measure_training(2, paper_tuned_config(), iterations=2,
                         telemetry=probe)
    assert m.telemetry is probe
    assert probe.iteration_samples


def test_queue_depth_track_is_downsampled(measured):
    r = measured.telemetry.registry
    track = r.get("sim_event_queue_depth_now").default.track
    total = r.get("sim_events_processed_total").default.value
    assert track  # sampled at least once
    assert len(track) <= total / 32  # stride-64 downsampling
