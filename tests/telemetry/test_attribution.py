"""Attribution-engine tests: exact decomposition on synthetic and real runs."""

import pytest

from repro.core import (
    measure_training,
    paper_default_config,
    paper_tuned_config,
)
from repro.telemetry import (
    BUCKETS,
    IterationSample,
    attribute_measurement,
    attribute_samples,
    compare_attributions,
)


class FakeSpan:
    def __init__(self, start_s, end_s):
        self.start_s = start_s
        self.end_s = end_s


class FakeTimeline:
    def __init__(self, spans_by_phase=None):
        self._spans = spans_by_phase or {}

    def spans(self, phase):
        return self._spans.get(phase, [])


def _sample(rank, iteration, start, stall, fwd, emit, barrier, end):
    return IterationSample(
        rank=rank, iteration=iteration, start_s=start, stall_end_s=stall,
        forward_end_s=fwd, last_emit_s=emit, barrier_s=barrier, end_s=end,
    )


def test_buckets_sum_exactly_to_wall():
    samples = [
        _sample(0, 0, 0.0, 0.1, 0.5, 1.0, 1.6, 1.8),
        _sample(1, 0, 0.0, 0.0, 0.6, 1.2, 1.6, 1.9),
    ]
    timeline = FakeTimeline({
        "ALLREDUCE": [FakeSpan(1.2, 1.5)],
    })
    att = attribute_samples(samples, timeline, warmup_iterations=0, gpus=2)
    [b] = att.breakdowns
    # Marking rank 0: wall 1.8, stall 0.1, compute 0.4+0.5+0.2,
    # skew = 1.2 - 1.0, tail window [1.2, 1.6]: 0.3 comm + 0.1 idle.
    assert b.wall_s == pytest.approx(1.8)
    assert b.buckets["input_stall"] == pytest.approx(0.1)
    assert b.buckets["compute"] == pytest.approx(1.1)
    assert b.buckets["straggler_skew"] == pytest.approx(0.2)
    assert b.buckets["exposed_comm"] == pytest.approx(0.3)
    assert b.buckets["fusion_wait"] == pytest.approx(0.1)
    assert b.buckets["fault_suspect"] == 0.0
    assert b.bucket_sum_s == pytest.approx(b.wall_s)
    assert att.max_sum_error < 1e-9


def test_overlapping_comm_spans_union_not_double_counted():
    samples = [_sample(0, 0, 0.0, 0.0, 0.2, 0.5, 1.5, 1.5)]
    timeline = FakeTimeline({
        "ALLREDUCE": [FakeSpan(0.6, 1.0), FakeSpan(0.8, 1.2)],
        "NEGOTIATE": [FakeSpan(0.9, 1.1)],
        "MEMCPY_IN": [FakeSpan(0.0, 10.0)],  # clipped to the tail window
    })
    att = attribute_samples(samples, timeline, warmup_iterations=0)
    [b] = att.breakdowns
    # Tail window is [0.5, 1.5]; the memcpy span covers all of it.
    assert b.buckets["exposed_comm"] == pytest.approx(1.0)
    assert b.buckets["fusion_wait"] == 0.0


def test_suspect_overlap_splits_idle_tail():
    samples = [_sample(0, 0, 0.0, 0.0, 0.2, 0.4, 1.4, 1.4)]
    timeline = FakeTimeline({
        "SUSPECT": [FakeSpan(0.4, 0.9)],  # half the 1.0 s tail
    })
    att = attribute_samples(samples, timeline, warmup_iterations=0)
    [b] = att.breakdowns
    assert b.buckets["exposed_comm"] == 0.0
    assert b.buckets["fault_suspect"] == pytest.approx(0.5)
    assert b.buckets["fusion_wait"] == pytest.approx(0.5)
    assert b.bucket_sum_s == pytest.approx(b.wall_s)


def test_warmup_iterations_are_excluded():
    samples = [
        _sample(0, 0, 0.0, 0.0, 0.2, 0.4, 0.5, 0.6),
        _sample(0, 1, 0.6, 0.6, 0.8, 1.0, 1.1, 1.2),
    ]
    att = attribute_samples(samples, FakeTimeline(), warmup_iterations=1)
    assert [b.iteration for b in att.breakdowns] == [1]
    with pytest.raises(ValueError):
        attribute_samples(samples, FakeTimeline(), warmup_iterations=2)
    with pytest.raises(ValueError):
        attribute_samples([], FakeTimeline())


def test_shares_and_table():
    samples = [_sample(0, 0, 0.0, 0.0, 0.5, 1.0, 1.0, 1.0)]
    att = attribute_samples(samples, FakeTimeline(), warmup_iterations=0,
                            gpus=4, label="unit")
    shares = att.shares()
    assert shares["compute"] == pytest.approx(1.0)
    assert sum(shares.values()) == pytest.approx(1.0)
    text = att.table()
    assert "unit" in text and "@ 4 GPUs" in text
    for bucket in BUCKETS:
        assert bucket in text


def test_attribute_measurement_requires_telemetry():
    m = measure_training(2, paper_tuned_config(), iterations=2)
    with pytest.raises(ValueError):
        attribute_measurement(m)


def test_real_run_sums_within_tolerance_and_compares():
    md = measure_training(6, paper_default_config(), iterations=3,
                          telemetry=True)
    mt = measure_training(6, paper_tuned_config(), iterations=3,
                          telemetry=True)
    ad = attribute_measurement(md)
    at = attribute_measurement(mt)
    assert ad.max_sum_error < 0.02
    assert at.max_sum_error < 0.02
    assert ad.mean_wall_s == pytest.approx(
        md.stats.mean_iteration_seconds, rel=1e-6
    )
    rows = compare_attributions(ad, at)
    assert [r["bucket"] for r in rows] == list(BUCKETS)
    assert all("delta ms" in r for r in rows)
