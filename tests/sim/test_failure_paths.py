"""Failure propagation through composed simulation structures."""

import pytest

from repro.sim import AllOf, AnyOf, Environment, Interrupt, Resource


def test_failure_inside_nested_yield_from():
    """Exceptions cross `yield from` boundaries like normal Python."""
    env = Environment()

    def inner(env):
        yield env.timeout(1)
        raise ValueError("deep failure")

    def middle(env):
        result = yield from inner(env)
        return result

    def outer(env):
        try:
            yield env.process(middle(env))
        except ValueError as exc:
            return str(exc)

    p = env.process(outer(env))
    env.run()
    assert p.value == "deep failure"


def test_anyof_with_failing_member_fails():
    env = Environment()

    def failing(env):
        yield env.timeout(1)
        raise KeyError("boom")

    def waiter(env):
        try:
            yield AnyOf(env, [env.process(failing(env)), env.timeout(5)])
        except KeyError:
            return "failed-first"
        return "ok"

    p = env.process(waiter(env))
    env.run(until=p)
    assert p.value == "failed-first"


def test_anyof_succeeds_before_late_failure():
    """A failure after the AnyOf already fired must not abort the run."""
    env = Environment()

    def failing(env):
        yield env.timeout(5)
        raise KeyError("late")

    def waiter(env):
        result = yield AnyOf(env, [env.timeout(1, value="fast"),
                                   env.process(failing(env))])
        return list(result.values())

    p = env.process(waiter(env))
    # The late failure is nobody's problem once the condition resolved;
    # the run must complete cleanly.
    env.run()
    assert p.value == ["fast"]


def test_interrupt_while_holding_resource_releases_via_context():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def holder(env):
        with res.request() as req:
            yield req
            order.append("acquired")
            try:
                yield env.timeout(100)
            except Interrupt:
                order.append("interrupted")
        # context manager released the resource

    def next_user(env):
        with res.request() as req:
            yield req
            order.append("second-acquired")

    victim = env.process(holder(env))

    def interrupter(env):
        yield env.timeout(1)
        victim.interrupt()

    env.process(interrupter(env))
    env.process(next_user(env))
    env.run()
    assert order == ["acquired", "interrupted", "second-acquired"]
    assert res.count == 0


def test_double_interrupt_before_resume():
    """Two interrupts queued for the same process both get delivered."""
    env = Environment()
    hits = []

    def sleeper(env):
        for _ in range(2):
            try:
                yield env.timeout(100)
            except Interrupt as intr:
                hits.append(intr.cause)
        return "done"

    victim = env.process(sleeper(env))

    def interrupter(env):
        yield env.timeout(1)
        victim.interrupt("a")
        victim.interrupt("b")

    env.process(interrupter(env))
    env.run(until=victim)
    assert hits == ["a", "b"]


def test_failed_allof_member_after_condition_failed_is_defused():
    env = Environment()

    def fail_at(env, t, msg):
        yield env.timeout(t)
        raise RuntimeError(msg)

    def waiter(env):
        cond = AllOf(env, [
            env.process(fail_at(env, 1, "first")),
            env.process(fail_at(env, 2, "second")),
        ])
        with pytest.raises(RuntimeError, match="first"):
            yield cond
        return "handled"

    p = env.process(waiter(env))
    env.run()
    assert p.value == "handled"
