"""Property-based tests on the DES kernel invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import AllOf, AnyOf, Environment, Resource


@given(st.lists(st.floats(0, 100), min_size=1, max_size=30))
def test_events_processed_in_time_order(delays):
    """Callbacks fire in nondecreasing simulation time."""
    env = Environment()
    seen = []
    for d in delays:
        env.timeout(d).callbacks.append(lambda _e: seen.append(env.now))
    env.run()
    assert seen == sorted(seen)
    assert len(seen) == len(delays)
    assert env.now == max(delays)


@given(st.lists(st.floats(0.01, 50), min_size=1, max_size=15))
def test_sequential_process_time_is_sum(delays):
    env = Environment()

    def proc(env):
        for d in delays:
            yield env.timeout(d)

    env.process(proc(env))
    env.run()
    assert abs(env.now - sum(delays)) < 1e-9 * max(1, len(delays))


@given(st.lists(st.floats(0.01, 50), min_size=1, max_size=15))
def test_parallel_processes_time_is_max(delays):
    env = Environment()

    def proc(env, d):
        yield env.timeout(d)

    for d in delays:
        env.process(proc(env, d))
    env.run()
    assert env.now == max(delays)


@given(st.lists(st.floats(0.01, 20), min_size=1, max_size=10))
def test_allof_fires_at_max_anyof_at_min(delays):
    env = Environment()
    timeouts = [env.timeout(d) for d in delays]
    all_times, any_times = [], []
    AllOf(env, list(timeouts)).callbacks.append(
        lambda _e: all_times.append(env.now)
    )
    AnyOf(env, list(timeouts)).callbacks.append(
        lambda _e: any_times.append(env.now)
    )
    env.run()
    assert all_times == [max(delays)]
    assert any_times == [min(delays)]


@settings(max_examples=30, deadline=None)
@given(
    capacity=st.integers(1, 4),
    holds=st.lists(st.floats(0.1, 5), min_size=1, max_size=12),
)
def test_resource_throughput_bound(capacity, holds):
    """With capacity c, total elapsed >= sum(holds)/c and >= max hold."""
    env = Environment()
    res = Resource(env, capacity=capacity)

    def user(env, hold):
        with res.request() as req:
            yield req
            yield env.timeout(hold)

    for h in holds:
        env.process(user(env, h))
    env.run()
    assert env.now >= sum(holds) / capacity - 1e-9
    assert env.now >= max(holds) - 1e-12
    assert res.count == 0 and res.queue_len == 0


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 2**32 - 1), st.integers(1, 8))
def test_simulation_deterministic_under_seeded_jitter(seed, nprocs):
    """Two identical runs produce identical completion times."""
    from repro.sim import RandomStreams

    def run_once():
        env = Environment()
        streams = RandomStreams(seed)
        done = []

        def proc(env, rank):
            gen = streams.child(f"r{rank}").get("t")
            for _ in range(3):
                yield env.timeout(float(gen.random()) + 0.01)
            done.append(env.now)

        for r in range(nprocs):
            env.process(proc(env, r))
        env.run()
        return done

    assert run_once() == run_once()
