"""Unit tests for the discrete-event engine core."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    SimulationError,
)


def test_timeout_advances_time():
    env = Environment()

    def proc(env):
        yield env.timeout(1.5)
        return env.now

    p = env.process(proc(env))
    env.run()
    assert env.now == 1.5
    assert p.value == 1.5


def test_zero_delay_timeout_runs_same_timestep():
    env = Environment()
    order = []

    def proc(env, tag):
        yield env.timeout(0)
        order.append(tag)

    env.process(proc(env, "a"))
    env.process(proc(env, "b"))
    env.run()
    assert env.now == 0.0
    assert order == ["a", "b"]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_event_succeed_resumes_with_value():
    env = Environment()
    ev = env.event()
    seen = []

    def waiter(env):
        val = yield ev
        seen.append(val)

    def firer(env):
        yield env.timeout(2)
        ev.succeed("payload")

    env.process(waiter(env))
    env.process(firer(env))
    env.run()
    assert seen == ["payload"]
    assert env.now == 2


def test_event_double_trigger_is_error():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_fail_requires_exception():
    env = Environment()
    ev = env.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_process_return_value_propagates_to_joiner():
    env = Environment()

    def child(env):
        yield env.timeout(1)
        return 42

    def parent(env):
        result = yield env.process(child(env))
        return result + 1

    p = env.process(parent(env))
    env.run()
    assert p.value == 43


def test_process_exception_propagates_to_joiner():
    env = Environment()

    def child(env):
        yield env.timeout(1)
        raise ValueError("boom")

    def parent(env):
        try:
            yield env.process(child(env))
        except ValueError as exc:
            return f"caught {exc}"

    p = env.process(parent(env))
    env.run()
    assert p.value == "caught boom"


def test_unhandled_process_exception_aborts_run():
    env = Environment()

    def bad(env):
        yield env.timeout(1)
        raise RuntimeError("unhandled")

    env.process(bad(env))
    with pytest.raises(RuntimeError, match="unhandled"):
        env.run()


def test_yield_non_event_raises_inside_process():
    env = Environment()

    def bad(env):
        try:
            yield 123
        except SimulationError:
            return "rejected"

    p = env.process(bad(env))
    env.run()
    assert p.value == "rejected"


def test_yield_already_processed_event_resumes_immediately():
    env = Environment()
    ev = env.event()
    ev.succeed("early")

    def proc(env):
        yield env.timeout(1)
        val = yield ev  # processed long ago
        return (env.now, val)

    p = env.process(proc(env))
    env.run()
    assert p.value == (1, "early")


def test_interrupt_delivers_cause():
    env = Environment()
    log = []

    def sleeper(env):
        try:
            yield env.timeout(100)
        except Interrupt as intr:
            log.append((env.now, intr.cause))

    def interrupter(env, victim):
        yield env.timeout(3)
        victim.interrupt(cause="wakeup")

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert log == [(3, "wakeup")]


def test_interrupt_dead_process_is_error():
    env = Environment()

    def quick(env):
        yield env.timeout(0)

    p = env.process(quick(env))
    env.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_interrupted_process_can_rewait():
    """After an interrupt the old target still fires; process may re-yield it."""
    env = Environment()

    def sleeper(env):
        to = env.timeout(10)
        try:
            yield to
        except Interrupt:
            pass
        yield env.timeout(1)  # do something else
        return env.now

    def interrupter(env, victim):
        yield env.timeout(2)
        victim.interrupt()

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert victim.value == 3


def test_all_of_collects_values_in_order():
    env = Environment()

    def proc(env):
        t1 = env.timeout(1, value="a")
        t2 = env.timeout(2, value="b")
        result = yield AllOf(env, [t2, t1])
        return list(result.values())

    p = env.process(proc(env))
    env.run()
    assert p.value == ["b", "a"]
    assert env.now == 2


def test_any_of_fires_on_first():
    env = Environment()

    def proc(env):
        t1 = env.timeout(1, value="fast")
        t2 = env.timeout(5, value="slow")
        result = yield AnyOf(env, [t1, t2])
        return (env.now, list(result.values()))

    p = env.process(proc(env))
    env.run(until=p)
    assert p.value == (1, ["fast"])


def test_all_of_empty_triggers_immediately():
    env = Environment()

    def proc(env):
        result = yield AllOf(env, [])
        return result

    p = env.process(proc(env))
    env.run()
    assert p.value == {}


def test_all_of_propagates_failure():
    env = Environment()

    def failing(env):
        yield env.timeout(1)
        raise KeyError("inner")

    def proc(env):
        try:
            yield AllOf(env, [env.process(failing(env)), env.timeout(10)])
        except KeyError:
            return "failed"

    p = env.process(proc(env))
    env.run(until=p)
    assert p.value == "failed"


def test_run_until_float_advances_time_past_queue():
    env = Environment()

    def proc(env):
        yield env.timeout(1)

    env.process(proc(env))
    env.run(until=10.0)
    assert env.now == 10.0


def test_non_generator_process_rejected():
    env = Environment()
    with pytest.raises(TypeError):
        env.process(iter([]))


def test_run_until_past_time_is_error():
    env = Environment()

    def proc(env):
        yield env.timeout(5)

    env.process(proc(env))
    env.run(until=5.0)
    with pytest.raises(ValueError):
        env.run(until=1.0)


def test_run_until_event_returns_its_value():
    env = Environment()

    def proc(env):
        yield env.timeout(3)
        return "val"

    p = env.process(proc(env))
    assert env.run(until=p) == "val"


def test_run_until_untriggered_event_raises_when_queue_drains():
    env = Environment()
    ev = env.event()  # nobody triggers this

    def proc(env):
        yield env.timeout(1)

    env.process(proc(env))
    with pytest.raises(SimulationError):
        env.run(until=ev)


def test_step_empty_queue_is_error():
    env = Environment()
    with pytest.raises(SimulationError):
        env.step()


def test_deterministic_fifo_tie_break():
    """Events scheduled for the same time run in insertion order."""
    env = Environment()
    order = []
    for i in range(20):
        env.timeout(1.0).callbacks.append(lambda _e, i=i: order.append(i))
    env.run()
    assert order == list(range(20))


def test_peek_reports_next_event_time():
    env = Environment()
    assert env.peek() == float("inf")
    env.timeout(4.0)
    env.timeout(2.0)
    assert env.peek() == 2.0
