"""Unit tests for Resource and Store primitives."""

import pytest

from repro.sim import Environment, Resource, SimulationError, Store


def test_resource_grants_up_to_capacity():
    env = Environment()
    res = Resource(env, capacity=2)
    acquired = []

    def user(env, tag, hold):
        with res.request() as req:
            yield req
            acquired.append((env.now, tag))
            yield env.timeout(hold)

    env.process(user(env, "a", 5))
    env.process(user(env, "b", 5))
    env.process(user(env, "c", 1))
    env.run()
    # a and b acquire at t=0; c waits until one releases at t=5
    assert acquired == [(0, "a"), (0, "b"), (5, "c")]


def test_resource_fifo_order():
    env = Environment()
    res = Resource(env, capacity=1)
    grants = []

    def user(env, tag):
        with res.request() as req:
            yield req
            grants.append(tag)
            yield env.timeout(1)

    for tag in "abcde":
        env.process(user(env, tag))
    env.run()
    assert grants == list("abcde")


def test_resource_invalid_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_resource_release_cancels_queued_request():
    env = Environment()
    res = Resource(env, capacity=1)

    def holder(env):
        with res.request() as req:
            yield req
            yield env.timeout(10)

    def impatient(env):
        req = res.request()
        result = yield env.any_of([req, env.timeout(1)])
        if req not in result:
            res.release(req)  # cancel: still queued
            return "gave up"
        return "got it"

    env.process(holder(env))
    p = env.process(impatient(env))
    env.run()
    assert p.value == "gave up"
    assert res.queue_len == 0


def test_resource_double_release_is_error():
    env = Environment()
    res = Resource(env, capacity=1)

    def proc(env):
        req = res.request()
        yield req
        res.release(req)
        res.release(req)

    env.process(proc(env))
    with pytest.raises(SimulationError):
        env.run()


def test_resource_counters():
    env = Environment()
    res = Resource(env, capacity=1)

    def holder(env):
        with res.request() as req:
            yield req
            assert res.count == 1
            yield env.timeout(2)

    def waiter(env):
        yield env.timeout(1)
        with res.request() as req:
            assert res.queue_len == 1
            yield req

    env.process(holder(env))
    env.process(waiter(env))
    env.run()
    assert res.count == 0 and res.queue_len == 0


def test_store_put_then_get():
    env = Environment()
    store = Store(env)

    def proc(env):
        store.put("x")
        item = yield store.get()
        return item

    p = env.process(proc(env))
    env.run()
    assert p.value == "x"


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)

    def getter(env):
        item = yield store.get()
        return (env.now, item)

    def putter(env):
        yield env.timeout(3)
        store.put("late")

    g = env.process(getter(env))
    env.process(putter(env))
    env.run()
    assert g.value == (3, "late")


def test_store_fifo_across_items_and_getters():
    env = Environment()
    store = Store(env)
    received = []

    def getter(env, tag):
        item = yield store.get()
        received.append((tag, item))

    env.process(getter(env, "g1"))
    env.process(getter(env, "g2"))

    def putter(env):
        yield env.timeout(1)
        store.put("i1")
        store.put("i2")
        store.put("i3")

    env.process(putter(env))
    env.run()
    assert received == [("g1", "i1"), ("g2", "i2")]
    assert store.peek_all() == ["i3"]


def test_store_get_nowait():
    env = Environment()
    store = Store(env)
    with pytest.raises(SimulationError):
        store.get_nowait()
    store.put(7)
    assert store.get_nowait() == 7
    assert len(store) == 0
