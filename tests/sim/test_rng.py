"""Tests for deterministic named RNG streams."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.sim import RandomStreams
from repro.sim.rng import stable_seed


def test_same_name_same_stream_object():
    streams = RandomStreams(seed=1)
    assert streams.get("a") is streams.get("a")


def test_reproducible_across_instances():
    a = RandomStreams(seed=42).get("latency").random(10)
    b = RandomStreams(seed=42).get("latency").random(10)
    np.testing.assert_array_equal(a, b)


def test_streams_are_independent_of_creation_order():
    s1 = RandomStreams(seed=9)
    s1.get("x")  # burn a stream first
    x_then_y = s1.get("y").random(5)

    s2 = RandomStreams(seed=9)
    y_only = s2.get("y").random(5)
    np.testing.assert_array_equal(x_then_y, y_only)


def test_different_names_differ():
    s = RandomStreams(seed=3)
    assert not np.array_equal(s.get("a").random(8), s.get("b").random(8))


def test_different_seeds_differ():
    a = RandomStreams(seed=1).get("s").random(8)
    b = RandomStreams(seed=2).get("s").random(8)
    assert not np.array_equal(a, b)


def test_child_namespace_is_deterministic():
    a = RandomStreams(seed=5).child("rank0").get("jitter").random(4)
    b = RandomStreams(seed=5).child("rank0").get("jitter").random(4)
    np.testing.assert_array_equal(a, b)


def test_reset_restarts_streams():
    s = RandomStreams(seed=11)
    first = s.get("z").random(4)
    s.reset()
    again = s.get("z").random(4)
    np.testing.assert_array_equal(first, again)


@given(st.text(max_size=30), st.text(max_size=30))
def test_stable_seed_injective_enough(a, b):
    """Distinct names should essentially never collide (64-bit blake2b)."""
    if a != b:
        assert stable_seed(a) != stable_seed(b)
    else:
        assert stable_seed(a) == stable_seed(b)


@given(st.integers(min_value=0, max_value=2**32 - 1))
def test_stable_seed_in_range(seed):
    val = stable_seed(seed, "name")
    assert 0 <= val < 2**64
