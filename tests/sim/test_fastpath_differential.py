"""Differential-equivalence gate for the simulator fast path.

Every test runs the same scenario twice — fast path forced **on** and
forced **off** — and asserts the results are bit-identical in every
compared observable: training statistics, timeline events, runtime
stats, link utilization, fault reports, telemetry attribution buckets,
trace spans, and checkpoint state.  The only permitted difference is
kernel event *counts* (``Environment.events_scheduled``,
``sim_events_processed_total``), the same exclusion the
checkpoint/resume contract makes (:mod:`repro.checkpoint.train`).

Scenario classes: uncontended and contended routes, property-generated
knob/seed/scale combinations (hypothesis), fault schedules, elastic
shrink through rank crash/restart, tracing and telemetry attached, and
checkpoint capture + resume across the two paths.
"""

import dataclasses
import pickle

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import Fabric, build_summit
from repro.core import (
    measure_training,
    paper_default_config,
    paper_tuned_config,
)
from repro.core.sweep import clear_profile_cache
from repro.faults import (
    DegradedRail,
    FaultSchedule,
    LinkFlap,
    RankCrash,
    RankRestart,
    StragglerGPU,
)
from repro.sim import Environment, fast_path, fast_path_enabled

RAIL_A = ("nic:0:0", "switch:-1:1")


def run_both(**kwargs):
    """One scenario through both paths; returns ``(fast, reference)``."""
    clear_profile_cache()
    with fast_path(True):
        hot = measure_training(**kwargs)
    clear_profile_cache()
    with fast_path(False):
        ref = measure_training(**kwargs)
    return hot, ref


def assert_equivalent(hot, ref):
    """Field-for-field bit-identity on every compared observable."""
    assert pickle.dumps(hot.stats) == pickle.dumps(ref.stats)
    assert pickle.dumps(hot.runtime_stats) == pickle.dumps(ref.runtime_stats)
    assert pickle.dumps(hot.link_utilization) == \
        pickle.dumps(ref.link_utilization)
    assert pickle.dumps(hot.fault_report) == pickle.dumps(ref.fault_report)
    assert len(hot.timeline.events) == len(ref.timeline.events)
    for ours, theirs in zip(hot.timeline.events, ref.timeline.events):
        assert pickle.dumps(ours) == pickle.dumps(theirs)
    if hot.trace is not None or ref.trace is not None:
        assert pickle.dumps(hot.trace.spans) == pickle.dumps(ref.trace.spans)
    if hot.telemetry is not None or ref.telemetry is not None:
        from repro.telemetry import attribute_measurement

        # Attribution buckets are simulated-seconds that sum to wall
        # time — they must match exactly.  Raw registry metrics are NOT
        # compared: kernel event counters legitimately differ.
        assert pickle.dumps(attribute_measurement(hot)) == \
            pickle.dumps(attribute_measurement(ref))


def test_fast_path_defaults_on():
    """The fast path is on unless REPRO_FAST_PATH explicitly disables it.

    CI runs this same suite with the variable pinned to both values, so
    the assertion targets the env-aware default, not a bare True.
    """
    import os

    from repro.sim.fastpath import ENV_VAR

    raw = os.environ.get(ENV_VAR)
    expected = raw is None or raw.strip().lower() not in {
        "0", "false", "no", "off", ""}
    assert fast_path_enabled() == expected


def test_shortcut_engages_on_uncontended_transfers():
    """Serial point-to-point transfers elide every grant event."""
    env = Environment()
    topo = build_summit(env, nodes=1)
    fabric = Fabric(topo)
    gpus = topo.gpus()
    with fast_path(True):
        for i in range(4):
            fabric.transfer(gpus[0], gpus[i + 1], 1 << 20)
            env.run(None)
    assert fabric.fast_stats.fast == 4
    assert fabric.fast_stats.fallback == 0
    assert fabric.fast_stats.events_elided > 0
    assert fabric.fast_stats.hit_rate == 1.0


def test_shortcut_never_engages_when_disabled():
    env = Environment()
    topo = build_summit(env, nodes=1)
    fabric = Fabric(topo)
    gpus = topo.gpus()
    with fast_path(False):
        fabric.transfer(gpus[0], gpus[1], 1 << 20)
        env.run(None)
    assert fabric.fast_stats.fast == 0
    assert fabric.fast_stats.fallback == 1


def test_contended_route_takes_reference_path_with_same_times():
    """Two transfers fighting over one link: identical completion times
    whichever path the first one took."""
    times = {}
    for enabled in (True, False):
        env = Environment()
        topo = build_summit(env, nodes=1)
        fabric = Fabric(topo)
        gpus = topo.gpus()
        with fast_path(enabled):
            a = fabric.transfer(gpus[0], gpus[1], 8 << 20)
            b = fabric.transfer(gpus[0], gpus[1], 8 << 20)
            env.run(None)
        times[enabled] = (env.now, a.value, b.value)
        if enabled:
            # The second transfer waits on the first: it must fall back.
            assert fabric.fast_stats.fallback >= 1
    assert times[True] == times[False]


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    gpus=st.sampled_from([2, 3, 6]),
    tuned=st.booleans(),
    seed=st.integers(min_value=0, max_value=3),
    jitter=st.sampled_from([0.0, 0.03]),
    iterations=st.integers(min_value=2, max_value=3),
)
def test_training_equivalence_property(gpus, tuned, seed, jitter, iterations):
    """Property sweep over knobs/scale/seed: fast ≡ reference."""
    cfg = paper_tuned_config() if tuned else paper_default_config()
    hot, ref = run_both(gpus=gpus, config=cfg, iterations=iterations,
                        seed=seed, jitter_std=jitter)
    assert_equivalent(hot, ref)


def test_multinode_training_equivalence():
    """Inter-node routes (EDR rails, multi-link acquisition order)."""
    hot, ref = run_both(gpus=12, config=paper_tuned_config(), iterations=2,
                        seed=5)
    assert_equivalent(hot, ref)


def test_fault_overlap_equivalence():
    """Stragglers, degraded rails and link flaps across both paths."""
    cfg = paper_tuned_config()
    schedule = FaultSchedule.of(
        StragglerGPU(rank=1, start_s=0.5, duration_s=2.0, slowdown=2.0),
        DegradedRail(link=RAIL_A, start_s=1.0, duration_s=2.0, factor=0.5),
        LinkFlap(link=("nic:1:0", "switch:-1:1"), start_s=0.8,
                 duration_s=2.5, period_s=0.6, down_s=0.2, severity=0.4),
    )
    hot, ref = run_both(gpus=12, config=cfg, iterations=4, seed=2,
                        schedule=schedule)
    assert hot.fault_report["faults_applied"] >= 3
    assert_equivalent(hot, ref)


def test_elastic_shrink_equivalence():
    """Rank crash + restart (membership change) across both paths."""
    base = paper_tuned_config()
    probe = measure_training(6, base, iterations=2, jitter_std=0.0)
    t = probe.stats.mean_iteration_seconds
    cfg = dataclasses.replace(base, horovod=base.horovod.with_(
        negotiation_deadline_s=0.15 * t, suspect_retries=1,
    ))
    schedule = FaultSchedule.of(
        RankCrash(rank=5, start_s=1.5 * t),
        RankRestart(rank=5, start_s=3.5 * t),
    )
    hot, ref = run_both(gpus=6, config=cfg, iterations=6, seed=3,
                        schedule=schedule)
    assert hot.fault_report["rank_crashes"] == 1
    assert hot.fault_report["rank_restarts"] == 1
    assert_equivalent(hot, ref)


@pytest.mark.parametrize("observation", ["trace", "telemetry"])
def test_observation_attached_equivalence(observation):
    """Tracing/telemetry attached: still bit-identical, and activation
    is observation-independent (same elision whether observed or not)."""
    kwargs = dict(gpus=6, config=paper_tuned_config(), iterations=2, seed=1)
    if observation == "trace":
        kwargs["trace"] = "links"
    else:
        kwargs["telemetry"] = True
    hot, ref = run_both(**kwargs)
    assert_equivalent(hot, ref)


def test_checkpoint_resume_equivalence():
    """Capture on one path, resume on the other — all four combinations
    land on the same completed payload."""
    from repro.checkpoint import CheckpointPlan, resume_training

    cfg = paper_tuned_config()
    kwargs = dict(gpus=6, config=cfg, iterations=5, seed=1)
    clear_profile_cache()
    with fast_path(False):
        baseline = measure_training(**kwargs)
    payloads = set()
    for capture_fast in (True, False):
        clear_profile_cache()
        with fast_path(capture_fast):
            m = measure_training(
                checkpoint=CheckpointPlan(every=1, stop_at=3), **kwargs
            )
        assert m.interrupted and m.checkpoint is not None
        for resume_fast in (True, False):
            with fast_path(resume_fast):
                resumed = resume_training(m.checkpoint)
            assert not resumed.interrupted
            payloads.add(pickle.dumps(
                (resumed.stats, resumed.link_utilization)
            ))
            assert len(resumed.timeline.events) == len(baseline.timeline.events)
            for ours, theirs in zip(resumed.timeline.events,
                                    baseline.timeline.events):
                assert pickle.dumps(ours) == pickle.dumps(theirs)
    assert payloads == {
        pickle.dumps((baseline.stats, baseline.link_utilization))
    }


def test_osu_collective_equivalence():
    """The OSU microbenchmark path: identical latencies both ways."""
    from repro.runner import OSUPoint

    results = {}
    for enabled in (True, False):
        with fast_path(enabled):
            point = OSUPoint(gpus=12, library=paper_tuned_config().library,
                             nbytes=1 << 20, iterations=3)
            results[enabled] = pickle.dumps(point.execute())
    assert results[True] == results[False]
