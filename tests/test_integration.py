"""Cross-layer integration tests: invariants that span multiple packages."""

import pytest

from repro.core import (
    measure_training,
    paper_default_config,
    paper_tuned_config,
)
from repro.core.sweep import model_profile


@pytest.fixture(scope="module")
def measurement():
    """One shared 6-GPU default-config measurement."""
    return measure_training(
        6, paper_default_config(), iterations=3, jitter_std=0.0
    )


class TestAccountingInvariants:
    def test_every_gradient_byte_reduced(self, measurement):
        """Runtime counters must match the model's gradient inventory."""
        profile = model_profile("deeplab")
        iters = len(measurement.stats.iteration_seconds)
        expected_bytes = profile.batch_size and sum(
            g.nbytes for _, g in profile.emission_schedule
        )
        assert measurement.runtime_stats.bytes_reduced == expected_bytes * iters
        assert measurement.runtime_stats.tensors_reduced == (
            len(profile.emission_schedule) * iters
        )

    def test_timeline_matches_runtime_counters(self, measurement):
        totals = measurement.timeline.total_by_phase()
        rt = measurement.runtime_stats
        assert totals["ALLREDUCE"] == pytest.approx(rt.allreduce_seconds)
        assert totals["NEGOTIATE"] == pytest.approx(rt.negotiation_seconds)
        assert len(measurement.timeline.spans("ALLREDUCE")) == rt.fused_ops

    def test_iteration_bounded_below_by_compute(self, measurement):
        assert (
            measurement.stats.mean_iteration_seconds
            >= measurement.stats.compute_iteration_seconds
        )

    def test_efficiency_consistent_with_throughput(self, measurement):
        profile = model_profile("deeplab")
        expected = measurement.images_per_second / (
            6 * profile.images_per_second
        )
        assert measurement.scaling_efficiency == pytest.approx(expected)


class TestPaperHeadlineShapes:
    """The abstract's claims, at reduced scale where they already show."""

    def test_throughput_scales_with_gpus(self):
        m6 = measure_training(6, paper_tuned_config(), iterations=2,
                              jitter_std=0.0)
        m12 = measure_training(12, paper_tuned_config(), iterations=2,
                               jitter_std=0.0)
        assert m12.images_per_second > 1.9 * m6.images_per_second

    @pytest.mark.slow
    def test_default_at_132_is_poor_and_tuned_is_near_linear(self):
        """The headline claim at full scale (slow test, ~30 s)."""
        d = measure_training(132, paper_default_config(), iterations=2,
                             jitter_std=0.0)
        t = measure_training(132, paper_tuned_config(), iterations=2,
                             jitter_std=0.0)
        assert d.scaling_efficiency < 0.80
        assert t.scaling_efficiency > 0.90
        assert t.images_per_second / d.images_per_second > 1.2

    def test_single_gpu_calibration_via_full_stack(self):
        m = measure_training(1, paper_default_config(), iterations=3,
                             jitter_std=0.0)
        assert m.images_per_second == pytest.approx(6.7, rel=0.05)


class TestDeterminism:
    def test_full_stack_reproducible(self):
        a = measure_training(6, paper_tuned_config(), iterations=2, seed=3)
        b = measure_training(6, paper_tuned_config(), iterations=2, seed=3)
        assert a.stats.iteration_seconds == b.stats.iteration_seconds
        assert a.runtime_stats.allreduce_seconds == pytest.approx(
            b.runtime_stats.allreduce_seconds
        )

    def test_library_choice_changes_only_comm(self):
        d = measure_training(6, paper_default_config(), iterations=2,
                             jitter_std=0.0)
        t = measure_training(6, paper_tuned_config(), iterations=2,
                             jitter_std=0.0)
        # Same compute baseline either way.
        assert d.stats.compute_iteration_seconds == pytest.approx(
            t.stats.compute_iteration_seconds
        )
        # Different communication cost.
        assert d.runtime_stats.allreduce_seconds > (
            t.runtime_stats.allreduce_seconds
        )
