"""Golden-trace regression test for ``Timeline.to_chrome_trace``.

A small, fully deterministic training run (zero jitter, fixed seed) with
a fault schedule exercises every phase family — negotiation, queueing,
allreduce, and the fault/resilience phases — and its Chrome trace is
compared against a committed golden file.  Any change to the trace
format, the phase vocabulary, or the simulated timings shows up as a
diff here.

Regenerate after an intentional timing/format change with::

    PYTHONPATH=src python tests/horovod/test_timeline_golden.py --regen
"""

import dataclasses
import json
from pathlib import Path

import pytest

from repro.horovod.timeline import FAULT_PHASES, PHASES

GOLDEN = Path(__file__).parent / "data" / "timeline_golden.json"


def make_trace() -> str:
    """The deterministic run whose trace is pinned."""
    from repro.core.knobs import paper_tuned_config
    from repro.core.sweep import clear_profile_cache, measure_training
    from repro.faults import FaultSchedule, RankCrash, StragglerGPU

    clear_profile_cache()
    cfg = paper_tuned_config()
    # A long cycle keeps the trace small (fewer NEGOTIATE/QUEUE spans)
    # without losing any phase coverage.
    cfg = dataclasses.replace(cfg, horovod=cfg.horovod.with_(
        cycle_time_s=50e-3, negotiation_deadline_s=0.2, suspect_retries=1,
    ))
    schedule = FaultSchedule.of(
        StragglerGPU(rank=1, start_s=1.0, duration_s=1.0, slowdown=2.0),
        RankCrash(rank=2, start_s=2.5),
    )
    m = measure_training(3, cfg, iterations=3, jitter_std=0.0, seed=0,
                         schedule=schedule)
    return m.timeline.to_chrome_trace()


@pytest.fixture(scope="module")
def trace_events():
    return json.loads(make_trace())["traceEvents"]


def test_matches_golden(trace_events):
    golden = json.loads(GOLDEN.read_text())["traceEvents"]
    assert len(trace_events) == len(golden)
    for ours, theirs in zip(trace_events, golden):
        assert ours["name"] == theirs["name"]
        assert ours["cat"] == theirs["cat"]
        assert ours["ph"] == theirs["ph"]
        assert ours["pid"] == theirs["pid"]
        assert ours["tid"] == theirs["tid"]
        assert ours["ts"] == pytest.approx(theirs["ts"], rel=1e-9, abs=1e-6)
        assert ours["dur"] == pytest.approx(theirs["dur"], rel=1e-9, abs=1e-6)


def test_schema_is_valid_chrome_trace(trace_events):
    assert trace_events, "trace must not be empty"
    for ev in trace_events:
        assert set(ev) == {"name", "cat", "ph", "ts", "dur", "pid", "tid"}
        assert ev["ph"] == "X"
        assert ev["cat"] in PHASES
        assert ev["dur"] >= 0
        assert ev["tid"] == PHASES.index(ev["cat"])


def test_timestamps_monotonic(trace_events):
    ts = [ev["ts"] for ev in trace_events]
    assert ts == sorted(ts)


def test_known_phases_present(trace_events):
    cats = {ev["cat"] for ev in trace_events}
    # Core lifecycle phases of any fused run…
    assert {"NEGOTIATE", "ALLREDUCE"} <= cats
    # …plus the fault phases this scenario injects.
    assert set(FAULT_PHASES) <= cats
    names = {ev["name"] for ev in trace_events if ev["cat"] == "FAULT"}
    assert any(n.startswith("straggler_rank1") for n in names)
    assert any(n.startswith("crash_rank2") for n in names)


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        GOLDEN.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN.write_text(make_trace())
        print(f"wrote {GOLDEN}")
    else:
        print(__doc__)
