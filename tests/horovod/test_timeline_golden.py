"""Golden-trace regression test for the merged Chrome trace.

A small, fully deterministic training run (zero jitter, fixed seed) with
a fault schedule exercises every phase family — negotiation, queueing,
allreduce, and the fault/resilience phases — plus full span tracing
(``trace="links"``) and telemetry counters.  The merged Chrome trace
(:func:`repro.trace.merged_chrome_trace`: timeline rows, counter track
and span hierarchy under one pid/tid scheme, with cross-rank flow
events) is compared against a committed golden file.  Any change to the
trace format, the phase/span vocabulary, or the simulated timings shows
up as a diff here.

Regenerate after an intentional timing/format change with::

    PYTHONPATH=src python tests/horovod/test_timeline_golden.py --regen
"""

import dataclasses
import json
from pathlib import Path

import pytest

from repro.horovod.timeline import FAULT_PHASES, PHASES

GOLDEN = Path(__file__).parent / "data" / "timeline_golden.json"

#: Span categories the traced golden run must produce.
SPAN_CATS = {
    "ITERATION", "INPUT_STALL", "FORWARD", "BACKWARD", "BARRIER_WAIT",
    "OPTIMIZER", "GROUP", "COLLECTIVE", "ALG_STEP", "TRANSFER",
}


def make_trace() -> str:
    """The deterministic run whose merged trace is pinned."""
    from repro.core.knobs import paper_tuned_config
    from repro.core.sweep import clear_profile_cache, measure_training
    from repro.faults import FaultSchedule, RankCrash, StragglerGPU
    from repro.sim import fast_path
    from repro.trace import merged_chrome_trace

    clear_profile_cache()
    cfg = paper_tuned_config()
    # A long cycle keeps the trace small (fewer NEGOTIATE/QUEUE spans)
    # without losing any phase coverage.
    cfg = dataclasses.replace(cfg, horovod=cfg.horovod.with_(
        cycle_time_s=50e-3, negotiation_deadline_s=0.2, suspect_retries=1,
    ))
    schedule = FaultSchedule.of(
        StragglerGPU(rank=1, start_s=1.0, duration_s=1.0, slowdown=2.0),
        RankCrash(rank=2, start_s=2.5),
    )
    # Pin the reference execution path: the merged trace embeds the
    # telemetry counter track, whose kernel-event metrics (queue depth,
    # events processed) are the one observable the fast path is allowed
    # to change.  Pinning keeps the golden stable under either
    # REPRO_FAST_PATH setting; fast≡reference on every other field is
    # covered by tests/sim/test_fastpath_differential.py.
    with fast_path(False):
        m = measure_training(3, cfg, iterations=3, jitter_std=0.0, seed=0,
                             schedule=schedule, telemetry=True, trace="links")
    return merged_chrome_trace(m.timeline, m.telemetry.registry, m.trace)


@pytest.fixture(scope="module")
def trace_events():
    return json.loads(make_trace())["traceEvents"]


def test_matches_golden(trace_events):
    golden = json.loads(GOLDEN.read_text())["traceEvents"]
    assert len(trace_events) == len(golden)
    for ours, theirs in zip(trace_events, golden):
        assert ours["name"] == theirs["name"]
        assert ours["ph"] == theirs["ph"]
        assert ours["pid"] == theirs["pid"]
        assert ours["tid"] == theirs["tid"]
        assert ours.get("cat") == theirs.get("cat")
        if "ts" in theirs:
            assert ours["ts"] == pytest.approx(theirs["ts"],
                                               rel=1e-9, abs=1e-6)
        if "dur" in theirs:
            assert ours["dur"] == pytest.approx(theirs["dur"],
                                                rel=1e-9, abs=1e-6)


def test_schema_is_valid_chrome_trace(trace_events):
    """Per-``ph`` schema: every event kind carries exactly its fields."""
    assert trace_events, "trace must not be empty"
    for ev in trace_events:
        if ev["ph"] == "M":
            assert ev["name"] in ("process_name", "thread_name")
            assert set(ev) == {"name", "ph", "pid", "tid", "args"}
            assert isinstance(ev["args"]["name"], str)
        elif ev["ph"] == "X":
            if ev["pid"] == 0:
                # Runtime timeline rows: one thread per phase.
                assert set(ev) == {"name", "cat", "ph", "ts", "dur",
                                   "pid", "tid"}
                assert ev["cat"] in PHASES
                assert ev["tid"] == PHASES.index(ev["cat"])
            else:
                # Span rows from the recorder carry their tags.
                assert set(ev) == {"name", "cat", "ph", "ts", "dur",
                                   "pid", "tid", "args"}
                assert ev["cat"] in SPAN_CATS | {"NEGOTIATE", "QUEUE",
                                                 "MEMCPY_IN", "COMPRESS",
                                                 "ALLREDUCE", "DECOMPRESS",
                                                 "MEMCPY_OUT"}
            assert ev["dur"] >= 0
        elif ev["ph"] == "C":
            assert ev["pid"] == 0 and ev["tid"] == len(PHASES)
            assert ev["args"]
        elif ev["ph"] in ("s", "f"):
            assert ev["cat"] == "flow"
            assert "id" in ev
        else:
            raise AssertionError(f"unexpected event kind {ev['ph']!r}")


def test_metadata_first_then_sorted(trace_events):
    kinds = [ev["ph"] for ev in trace_events]
    n_meta = kinds.count("M")
    assert all(k == "M" for k in kinds[:n_meta])
    ts = [ev["ts"] for ev in trace_events[n_meta:]]
    assert ts == sorted(ts)


def test_known_phases_present(trace_events):
    cats = {ev.get("cat") for ev in trace_events}
    # Core lifecycle phases of any fused run…
    assert {"NEGOTIATE", "ALLREDUCE"} <= cats
    # …plus the fault phases this scenario injects…
    assert set(FAULT_PHASES) <= cats
    # …plus the span hierarchy from the recorder.
    assert SPAN_CATS <= cats
    names = {ev["name"] for ev in trace_events if ev.get("cat") == "FAULT"}
    assert any(n.startswith("straggler_rank1") for n in names)
    assert any(n.startswith("crash_rank2") for n in names)


def test_flow_events_tie_collectives_to_rank_steps(trace_events):
    """Each collective's flow fans out to its per-rank ALG_STEP events."""
    starts = {ev["id"] for ev in trace_events if ev["ph"] == "s"}
    finishes = {ev["id"] for ev in trace_events if ev["ph"] == "f"}
    assert starts, "no collective flow starts"
    assert finishes == starts
    collectives = [ev for ev in trace_events
                   if ev.get("cat") == "COLLECTIVE"]
    assert len(collectives) == len(starts)


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        GOLDEN.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN.write_text(make_trace())
        print(f"wrote {GOLDEN}")
    else:
        print(__doc__)
