"""Differential test: tensor fusion must not change the numerics.

The fusion buffer is a pure transport optimization — packing gradients
into one big allreduce instead of many small ones must produce exactly
the same averaged gradients, and therefore exactly the same weights,
as the unfused path.  We train the real npnn model twice through the
simulated Horovod runtime, once with fusion on and once with
``fusion_threshold_bytes=0`` (every tensor reduced alone), and require
bit-identical weights after several steps.

The collective is pinned to recursive doubling: it reduces every element
in the same pairwise rank order regardless of where the element sits in
the (fused or unfused) buffer, so equality is exact, not approximate.
Ring, by contrast, rotates its segment accumulation order with the
buffer layout — the last test documents that reassociation.
"""

import numpy as np
import pytest

from repro.data import VOCMini
from repro.npnn import DataParallelTrainer, ParallelConfig
from repro.sim.units import MiB


def make_trainer(fusion_threshold_bytes, world=3, algorithm="recursive_doubling"):
    ds = VOCMini(size=16, num_classes=3, seed=2)
    cfg = ParallelConfig(world=world, per_replica_batch=2, width=4, lr=0.05,
                         fusion_threshold_bytes=fusion_threshold_bytes,
                         allreduce_algorithm=algorithm, seed=0)
    return DataParallelTrainer(ds, cfg)


def named_weights(trainer, rank=0):
    return {name: p.copy() for name, p, _ in trainer.replicas[rank].named_params()}


def test_fused_and_unfused_weights_identical_after_3_steps():
    fused = make_trainer(fusion_threshold_bytes=1 * MiB)
    unfused = make_trainer(fusion_threshold_bytes=0)
    fused.train(3)
    unfused.train(3)
    wf = named_weights(fused)
    wu = named_weights(unfused)
    assert wf.keys() == wu.keys()
    for name in wf:
        np.testing.assert_array_equal(wf[name], wu[name], err_msg=name)


def test_fusion_actually_fuses():
    """Sanity: the two runs really exercise different fusion behavior."""
    fused = make_trainer(fusion_threshold_bytes=1 * MiB)
    unfused = make_trainer(fusion_threshold_bytes=0)
    fused.step()
    fused_stats = fused.last_runtime_stats
    unfused.step()
    unfused_stats = unfused.last_runtime_stats
    n_tensors = len(list(fused.replicas[0].named_params()))
    assert unfused_stats.fused_ops == n_tensors
    assert fused_stats.fused_ops < unfused_stats.fused_ops
    assert fused_stats.mean_fusion_size > unfused_stats.mean_fusion_size


@pytest.mark.parametrize("world", (2, 5))
def test_equivalence_across_world_sizes(world):
    fused = make_trainer(fusion_threshold_bytes=1 * MiB, world=world)
    unfused = make_trainer(fusion_threshold_bytes=0, world=world)
    fused.train(2)
    unfused.train(2)
    for rank in range(world):
        wf = named_weights(fused, rank)
        wu = named_weights(unfused, rank)
        for name in wf:
            np.testing.assert_array_equal(wf[name], wu[name], err_msg=name)


def test_ring_reassociates_but_stays_close():
    """Ring's fused/unfused results differ only by float reassociation."""
    fused = make_trainer(fusion_threshold_bytes=1 * MiB, algorithm="ring")
    unfused = make_trainer(fusion_threshold_bytes=0, algorithm="ring")
    fused.train(3)
    unfused.train(3)
    wf = named_weights(fused)
    wu = named_weights(unfused)
    for name in wf:
        np.testing.assert_allclose(wf[name], wu[name], rtol=0, atol=1e-12,
                                   err_msg=name)
