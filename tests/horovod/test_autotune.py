"""Tests for the autotuner and the timeline/compression helpers."""

import json

import numpy as np
import pytest

from repro.horovod import (
    Autotuner,
    HorovodConfig,
    Timeline,
    compress_fp16,
    decompress_fp16,
)
from repro.horovod.compression import cast_seconds
from repro.sim.units import MiB


class TestAutotuner:
    def test_finds_grid_optimum_of_separable_objective(self):
        # Objective maximized at cycle=1ms, fusion=128MiB, hierarchical=True.
        def objective(cfg):
            score = 0.0
            score -= abs(cfg.cycle_time_s - 1e-3) * 1e3
            score -= abs(cfg.fusion_threshold_bytes - 128 * MiB) / MiB / 100
            score += 1.0 if cfg.hierarchical_allreduce else 0.0
            return score

        result = Autotuner().run(objective)
        assert result.best_config.cycle_time_s == pytest.approx(1e-3)
        assert result.best_config.fusion_threshold_bytes == 128 * MiB
        assert result.best_config.hierarchical_allreduce
        assert result.best_score == objective(result.best_config)

    def test_memoizes_evaluations(self):
        calls = []

        def objective(cfg):
            calls.append(cfg)
            return 0.0  # nothing improves: one round, all unique configs

        result = Autotuner().run(objective)
        assert len(calls) == len(set(calls)) == result.evaluations

    def test_history_records_all(self):
        result = Autotuner().run(lambda cfg: float(cfg.hierarchical_allreduce))
        assert result.evaluations == len(result.history)
        assert result.best_score == 1.0

    def test_respects_base_config(self):
        base = HorovodConfig.default().with_(compression="fp16")
        result = Autotuner().run(lambda cfg: 0.0, base=base)
        assert result.best_config.compression == "fp16"

    def test_validation(self):
        with pytest.raises(ValueError):
            Autotuner(cycle_grid=())
        with pytest.raises(ValueError):
            Autotuner(max_rounds=0)

    def test_deterministic(self):
        def objective(cfg):
            return -cfg.cycle_time_s + cfg.fusion_threshold_bytes * 1e-12

        r1 = Autotuner().run(objective)
        r2 = Autotuner().run(objective)
        assert r1.best_config == r2.best_config


class TestTimeline:
    def test_record_and_totals(self):
        tl = Timeline()
        tl.record("ALLREDUCE", "g1", 0.0, 1.0)
        tl.record("ALLREDUCE", "g2", 1.0, 1.5)
        tl.record("NEGOTIATE", "c1", 0.0, 0.25)
        assert tl.total_by_phase() == {"ALLREDUCE": 1.5, "NEGOTIATE": 0.25}
        assert len(tl.spans("ALLREDUCE")) == 2

    def test_unknown_phase_rejected(self):
        with pytest.raises(ValueError):
            Timeline().record("BOGUS", "x", 0, 1)

    def test_negative_span_rejected(self):
        with pytest.raises(ValueError):
            Timeline().record("QUEUE", "x", 2, 1)

    def test_chrome_trace_roundtrip(self):
        tl = Timeline()
        tl.record("ALLREDUCE", "fused_x3", 0.001, 0.002)
        trace = json.loads(tl.to_chrome_trace())
        [ev] = trace["traceEvents"]
        assert ev["name"] == "fused_x3"
        assert ev["ts"] == pytest.approx(1000)
        assert ev["dur"] == pytest.approx(1000)
        assert ev["ph"] == "X"


class TestCompression:
    def test_roundtrip_error_small(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal(1000).astype(np.float32)
        back = decompress_fp16(compress_fp16(x))
        assert back.dtype == np.float32
        np.testing.assert_allclose(back, x, atol=2e-3)

    def test_compress_halves_bytes(self):
        x = np.zeros(100, dtype=np.float32)
        assert compress_fp16(x).nbytes == x.nbytes // 2

    def test_decompress_rejects_non_fp16(self):
        with pytest.raises(ValueError):
            decompress_fp16(np.zeros(4, dtype=np.float32))

    def test_cast_seconds(self):
        assert cast_seconds(1000, 1000.0) == pytest.approx(1.5)
        with pytest.raises(ValueError):
            cast_seconds(-1, 1.0)
        with pytest.raises(ValueError):
            cast_seconds(1, 0.0)
