"""Tests for tensor-fusion packing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.horovod import PendingTensor, pack_tensors


def pt(name, nbytes):
    return PendingTensor(name, nbytes, ready_time=0.0)


def test_zero_threshold_disables_fusion():
    groups = pack_tensors([pt("a", 10), pt("b", 20)], 0)
    assert [g.names for g in groups] == [["a"], ["b"]]


def test_packs_up_to_threshold():
    groups = pack_tensors([pt("a", 40), pt("b", 40), pt("c", 40)], 100)
    # a+b fit (80 <= 100); adding c would exceed, so c starts a new group.
    assert [g.names for g in groups] == [["a", "b"], ["c"]]
    assert groups[0].nbytes == 80


def test_split_when_exceeding_threshold():
    groups = pack_tensors([pt("a", 60), pt("b", 60), pt("c", 60)], 100)
    assert [g.names for g in groups] == [["a"], ["b"], ["c"]]


def test_exact_fit_closes_group():
    groups = pack_tensors([pt("a", 50), pt("b", 50), pt("c", 10)], 100)
    assert [g.names for g in groups] == [["a", "b"], ["c"]]


def test_oversized_tensor_goes_alone():
    groups = pack_tensors([pt("small", 10), pt("huge", 1000), pt("tail", 10)], 100)
    assert [g.names for g in groups] == [["small"], ["huge"], ["tail"]]


def test_order_preserved():
    tensors = [pt(f"t{i}", 30) for i in range(6)]
    groups = pack_tensors(tensors, 100)
    flat = [n for g in groups for n in g.names]
    assert flat == [f"t{i}" for i in range(6)]


def test_empty_input():
    assert pack_tensors([], 100) == []


def test_negative_threshold_rejected():
    with pytest.raises(ValueError):
        pack_tensors([pt("a", 1)], -1)


def test_negative_tensor_size_rejected():
    with pytest.raises(ValueError):
        PendingTensor("a", -1, 0.0)


def test_group_len_and_nbytes():
    g = pack_tensors([pt("a", 5), pt("b", 7)], 100)[0]
    assert len(g) == 2 and g.nbytes == 12


@given(
    sizes=st.lists(st.integers(0, 1000), max_size=40),
    threshold=st.integers(0, 2000),
)
def test_packing_invariants(sizes, threshold):
    tensors = [pt(f"t{i}", s) for i, s in enumerate(sizes)]
    groups = pack_tensors(tensors, threshold)
    # 1. Every tensor appears exactly once, in order.
    flat = [n for g in groups for n in g.names]
    assert flat == [t.name for t in tensors]
    # 2. No group is empty.
    assert all(len(g) > 0 for g in groups)
    # 3. Multi-tensor groups never exceed the threshold (only an
    #    oversized singleton may), and packing is maximal: consecutive
    #    groups could not have been merged.
    if threshold > 0:
        for g in groups:
            if len(g) > 1:
                assert g.nbytes <= threshold
        for a, b in zip(groups, groups[1:]):
            assert a.nbytes + b.tensors[0].nbytes > threshold or a.nbytes >= threshold
    # 4. Total bytes conserved.
    assert sum(g.nbytes for g in groups) == sum(sizes)
