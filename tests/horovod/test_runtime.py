"""Tests for the Horovod runtime: negotiation, fusion, data correctness."""

import numpy as np
import pytest

from repro.horovod import HorovodConfig, HorovodRuntime, Timeline
from repro.mpi import VirtualBuffer
from repro.sim.units import KiB, MiB

from tests.mpi.conftest import make_comm


def make_runtime(p=4, config=None, **kwargs):
    env, comm = make_comm(p)
    cfg = config or HorovodConfig.default()
    return env, HorovodRuntime(comm, cfg, **kwargs)


def drive(env, runtime, submissions):
    """Run worker processes that submit `submissions[rank]` = list of
    (delay, name, payload); returns {(rank, name): result}."""
    results = {}

    def worker(env, rank, items):
        events = []
        for delay, name, payload in items:
            yield env.timeout(delay)
            events.append((name, runtime.submit(rank, name, payload)))
        for name, ev in events:
            results[(rank, name)] = yield ev

    procs = [
        env.process(worker(env, r, items)) for r, items in enumerate(submissions)
    ]
    env.run(until=env.all_of(procs))
    runtime.shutdown()
    env.run()
    return results


def test_single_tensor_averaged_across_ranks():
    env, rt = make_runtime(4)
    subs = [[(0.0, "g", np.full(8, float(r)))] for r in range(4)]
    results = drive(env, rt, subs)
    for r in range(4):
        np.testing.assert_allclose(results[(r, "g")], np.full(8, 1.5))
    assert rt.stats.tensors_reduced == 1
    assert rt.stats.fused_ops == 1


def test_result_preserves_shape():
    env, rt = make_runtime(2)
    subs = [[(0.0, "w", np.ones((3, 4)) * (r + 1))] for r in range(2)]
    results = drive(env, rt, subs)
    assert results[(0, "w")].shape == (3, 4)
    np.testing.assert_allclose(results[(0, "w")], np.full((3, 4), 1.5))


def test_fusion_packs_multiple_tensors_into_one_op():
    cfg = HorovodConfig.default().with_(fusion_threshold_bytes=1 * MiB)
    env, rt = make_runtime(2, cfg)
    subs = [
        [(0.0, f"t{i}", np.full(16, float(r + i))) for i in range(5)]
        for r in range(2)
    ]
    results = drive(env, rt, subs)
    assert rt.stats.fused_ops == 1
    assert rt.stats.tensors_reduced == 5
    for i in range(5):
        np.testing.assert_allclose(results[(0, f"t{i}")], np.full(16, i + 0.5))


def test_zero_fusion_threshold_one_op_per_tensor():
    cfg = HorovodConfig.default().with_(fusion_threshold_bytes=0)
    env, rt = make_runtime(2, cfg)
    subs = [
        [(0.0, f"t{i}", np.ones(4) * r) for i in range(3)] for r in range(2)
    ]
    drive(env, rt, subs)
    assert rt.stats.fused_ops == 3


def test_tensor_waits_for_all_ranks():
    """A tensor submitted by only some ranks is not reduced."""
    env, rt = make_runtime(2)
    ev = rt.submit(0, "lonely", np.ones(4))
    env.run(until=0.1)  # many cycles pass
    assert not ev.triggered
    assert rt.stats.fused_ops == 0
    rt.shutdown()
    env.run()


def test_straggler_delays_reduction():
    """Reduction completes only after the slowest rank submits."""
    env, rt = make_runtime(2)
    subs = [[(0.0, "g", np.ones(4))], [(0.05, "g", np.ones(4) * 3)]]
    results = drive(env, rt, subs)
    np.testing.assert_allclose(results[(0, "g")], np.full(4, 2.0))
    assert env.now > 0.05


def test_duplicate_submission_rejected():
    env, rt = make_runtime(2)
    rt.submit(0, "g", np.ones(4))
    with pytest.raises(ValueError, match="already submitted"):
        rt.submit(0, "g", np.ones(4))


def test_size_mismatch_rejected():
    env, rt = make_runtime(2)
    rt.submit(0, "g", np.ones(4))
    with pytest.raises(ValueError, match="size mismatch"):
        rt.submit(1, "g", np.ones(5))


def test_bad_rank_and_payload_rejected():
    env, rt = make_runtime(2)
    with pytest.raises(ValueError):
        rt.submit(5, "g", np.ones(4))
    with pytest.raises(TypeError):
        rt.submit(0, "g", [1, 2, 3])


def test_virtual_mode_returns_buffers():
    env, rt = make_runtime(3)
    subs = [[(0.0, "g", VirtualBuffer(64 * KiB))] for _ in range(3)]
    results = drive(env, rt, subs)
    assert all(isinstance(v, VirtualBuffer) for v in results.values())
    assert results[(0, "g")].nbytes == 64 * KiB
    assert rt.stats.bytes_reduced == 64 * KiB


def test_cycle_time_quantizes_start():
    """Nothing is reduced before the first cycle tick."""
    cfg = HorovodConfig.default().with_(cycle_time_s=10e-3)
    env, rt = make_runtime(2, cfg)
    subs = [[(0.0, "g", np.ones(4))] for _ in range(2)]
    drive(env, rt, subs)
    assert env.now >= 10e-3


def test_response_cache_hits_on_repeat_pattern():
    """Repeated iterations submit the same tensor set -> bitvector path."""
    cfg = HorovodConfig.default().with_(cache_enabled=True)
    env, rt = make_runtime(2, cfg)

    def worker(env, rank):
        for _ in range(3):
            ev = rt.submit(rank, "g", np.ones(4))
            yield ev

    procs = [env.process(worker(env, r)) for r in range(2)]
    env.run(until=env.all_of(procs))
    rt.shutdown()
    env.run()
    assert rt.stats.cache_hits >= 1
    assert rt.stats.negotiations > rt.stats.cache_hits


def test_cache_disabled_never_hits():
    cfg = HorovodConfig.default().with_(cache_enabled=False)
    env, rt = make_runtime(2, cfg)

    def worker(env, rank):
        for _ in range(3):
            ev = rt.submit(rank, "g", np.ones(4))
            yield ev

    procs = [env.process(worker(env, r)) for r in range(2)]
    env.run(until=env.all_of(procs))
    rt.shutdown()
    env.run()
    assert rt.stats.cache_hits == 0


def test_fp16_compression_result_close_and_faster_wire():
    cfg = HorovodConfig.default().with_(compression="fp16")
    env, rt = make_runtime(2, cfg)
    rng = np.random.default_rng(0)
    data = [rng.standard_normal(256).astype(np.float32) for _ in range(2)]
    subs = [[(0.0, "g", data[r])] for r in range(2)]
    results = drive(env, rt, subs)
    expected = (data[0] + data[1]) / 2
    np.testing.assert_allclose(results[(0, "g")], expected, atol=1e-2)
    assert rt.stats.compression_seconds > 0


def test_timeline_records_phases():
    tl = Timeline()
    env, rt = make_runtime(2, timeline=tl)
    subs = [[(0.0, "a", np.ones(4)), (0.0, "b", np.ones(4))] for _ in range(2)]
    drive(env, rt, subs)
    phases = {ev.phase for ev in tl.events}
    assert "NEGOTIATE" in phases and "ALLREDUCE" in phases
    assert "MEMCPY_IN" in phases  # two tensors fused -> pack copy happened
    totals = tl.total_by_phase()
    assert totals["ALLREDUCE"] > 0


def test_singleton_skips_memcpy():
    tl = Timeline()
    env, rt = make_runtime(2, timeline=tl)
    subs = [[(0.0, "only", np.ones(4))] for _ in range(2)]
    drive(env, rt, subs)
    assert tl.spans("MEMCPY_IN") == []


def test_queue_phase_recorded():
    """Tensors wait from readiness-on-all-ranks to execution (cycle wait)."""
    tl = Timeline()
    cfg = HorovodConfig.default().with_(cycle_time_s=10e-3)
    env, rt = make_runtime(2, cfg, timeline=tl)
    subs = [[(0.0, "g", np.ones(4))] for _ in range(2)]
    drive(env, rt, subs)
    queue_spans = tl.spans("QUEUE")
    assert queue_spans
    # Ready at t=0; first cycle fires at 10 ms; queue span covers it.
    assert queue_spans[0].duration_s == pytest.approx(10e-3, rel=0.2)


def test_hierarchical_config_runs():
    cfg = HorovodConfig.default().with_(hierarchical_allreduce=True)
    env, rt = make_runtime(12, cfg)  # 2 nodes
    subs = [[(0.0, "g", np.full(8, float(r)))] for r in range(12)]
    results = drive(env, rt, subs)
    np.testing.assert_allclose(results[(0, "g")], np.full(8, 5.5))


def test_stats_mean_fusion_size():
    env, rt = make_runtime(2)
    subs = [[(0.0, "g", np.ones(8, dtype=np.float32))] for _ in range(2)]
    drive(env, rt, subs)
    assert rt.stats.mean_fusion_size == 32
    empty = type(rt.stats)()
    assert empty.mean_fusion_size == 0.0
