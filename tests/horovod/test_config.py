"""Tests for HorovodConfig parsing and validation."""

import pytest

from repro.horovod import HorovodConfig
from repro.sim.units import MiB


def test_defaults_match_horovod():
    cfg = HorovodConfig.default()
    assert cfg.fusion_threshold_bytes == 64 * MiB
    assert cfg.cycle_time_s == pytest.approx(5e-3)
    assert not cfg.hierarchical_allreduce
    assert cfg.cache_enabled
    assert cfg.compression == "none"


def test_from_env_full():
    cfg = HorovodConfig.from_env({
        "HOROVOD_FUSION_THRESHOLD": str(256 * MiB),
        "HOROVOD_CYCLE_TIME": "2.5",
        "HOROVOD_HIERARCHICAL_ALLREDUCE": "1",
        "HOROVOD_CACHE_CAPACITY": "0",
        "HOROVOD_COMPRESSION": "fp16",
        "SOME_OTHER_VAR": "ignored",
    })
    assert cfg.fusion_threshold_bytes == 256 * MiB
    assert cfg.cycle_time_s == pytest.approx(2.5e-3)
    assert cfg.hierarchical_allreduce
    assert not cfg.cache_enabled
    assert cfg.compression == "fp16"


def test_from_env_empty_gives_defaults():
    assert HorovodConfig.from_env({}) == HorovodConfig.default()


@pytest.mark.parametrize("value,expected", [
    ("1", True), ("true", True), ("YES", True), ("on", True),
    ("0", False), ("false", False), ("", False), ("off", False),
])
def test_bool_env_parsing(value, expected):
    cfg = HorovodConfig.from_env({"HOROVOD_HIERARCHICAL_ALLREDUCE": value})
    assert cfg.hierarchical_allreduce is expected


def test_bad_bool_rejected():
    with pytest.raises(ValueError):
        HorovodConfig.from_env({"HOROVOD_HIERARCHICAL_ALLREDUCE": "maybe"})


def test_validation():
    with pytest.raises(ValueError):
        HorovodConfig(fusion_threshold_bytes=-1)
    with pytest.raises(ValueError):
        HorovodConfig(cycle_time_s=0)
    with pytest.raises(ValueError):
        HorovodConfig(compression="int8")


def test_with_replaces_fields():
    cfg = HorovodConfig.default().with_(cycle_time_s=1e-3)
    assert cfg.cycle_time_s == 1e-3
    assert cfg.fusion_threshold_bytes == HorovodConfig.default().fusion_threshold_bytes


def test_describe_is_compact():
    s = HorovodConfig.default().describe()
    assert "fusion=64MiB" in s and "cycle=5ms" in s and "hier=off" in s
    s2 = HorovodConfig(compression="fp16", allreduce_algorithm="ring").describe()
    assert "comp=fp16" in s2 and "alg=ring" in s2
