"""Reference checks for the extended model zoo (ResNet-101, MobileNetV2)."""

import pytest

from repro.models import (
    ModelCost,
    build_mobilenetv2,
    build_resnet,
    build_resnet101,
)


class TestResNet101:
    def test_exact_parameter_count(self):
        """torchvision resnet101: 44,549,160 trainable parameters."""
        assert build_resnet101().total_params == 44_549_160

    def test_deeper_than_resnet50(self):
        from repro.models import build_resnet50

        r50, r101 = build_resnet50(), build_resnet101()
        assert len(r101.layers) > len(r50.layers)
        assert r101.total_flops > 1.8 * r50.total_flops

    def test_resnet152_supported(self):
        """torchvision resnet152: 60,192,808 parameters."""
        assert build_resnet(152).total_params == 60_192_808

    def test_unsupported_depth(self):
        with pytest.raises(ValueError):
            build_resnet(34)


class TestMobileNetV2:
    def test_exact_parameter_count(self):
        """torchvision mobilenet_v2: 3,504,872 trainable parameters."""
        assert build_mobilenetv2().total_params == 3_504_872

    def test_output_geometry(self):
        g = build_mobilenetv2()
        assert g.layer("head_conv").out_hw == (7, 7)
        assert g.layer("head_conv").out_ch == 1280
        assert g.layer("classifier").out_ch == 1000

    def test_inverted_residual_adds_only_on_identity_blocks(self):
        g = build_mobilenetv2()
        names = [l.name for l in g.layers]
        # block0 (stride 1 but 32->16 channels): no residual add.
        assert "block0_add" not in names
        # block2 (24->24, stride 1): residual add present.
        assert "block2_add" in names

    def test_first_block_has_no_expand(self):
        g = build_mobilenetv2()
        names = [l.name for l in g.layers]
        assert "block0_expand" not in names
        assert "block1_expand" in names

    def test_dwconv_dominated_like_deeplab(self):
        """MobileNet is depthwise-heavy: the cost model's dwconv penalty
        makes its throughput far below what raw FLOPs would suggest —
        the same TF-era effect calibrated on DLv3+."""
        g = build_mobilenetv2()
        prof = ModelCost(g).profile(192)
        # ~0.6 GFLOPs/img: naive roofline would predict >2000 img/s.
        assert g.total_flops < 1.2e9
        assert 200 < prof.images_per_second < 1500


class TestSweepRegistry:
    def test_new_models_measurable(self):
        from repro.core import measure_training, paper_default_config

        m = measure_training(2, paper_default_config(), model="mobilenetv2",
                             iterations=2, jitter_std=0.0)
        assert m.images_per_second > 100
        m = measure_training(2, paper_default_config(), model="resnet101",
                             iterations=2, jitter_std=0.0)
        assert m.images_per_second > 50
