"""Tests for layer specs, the graph builder, and graph invariants."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.models.layers import FP32, GradTensor, GraphBuilder, LayerSpec, same_pad_out


def test_same_pad_out():
    assert same_pad_out((513, 513), 2) == (257, 257)
    assert same_pad_out((257, 257), 2) == (129, 129)
    assert same_pad_out((224, 224), 2) == (112, 112)
    assert same_pad_out((7, 7), 1) == (7, 7)


@given(st.integers(1, 600), st.integers(1, 4))
def test_same_pad_out_property(h, s):
    out = same_pad_out((h, h), s)[0]
    assert (out - 1) * s < h <= out * s


def test_conv_params_and_flops():
    b = GraphBuilder("t", (8, 8), 3)
    layer = b.conv("c", 16, 3)
    assert layer.params == 3 * 3 * 3 * 16
    # 8*8 output positions * 16 out_ch * 3 in_ch * 9 taps MACs * 2
    assert layer.flops == 2 * 8 * 8 * 16 * 3 * 9
    assert layer.out_hw == (8, 8)


def test_conv_with_bias_and_stride():
    b = GraphBuilder("t", (8, 8), 4)
    layer = b.conv("c", 8, 1, stride=2, bias=True)
    assert layer.out_hw == (4, 4)
    assert dict(layer.weights) == {"kernel": 4 * 8, "bias": 8}


def test_dwconv_params():
    b = GraphBuilder("t", (8, 8), 32)
    layer = b.dwconv("dw", 3)
    assert layer.params == 9 * 32
    assert layer.out_ch == 32
    assert layer.flops == 2 * 8 * 8 * 32 * 9


def test_dilation_recorded():
    b = GraphBuilder("t", (16, 16), 8)
    layer = b.dwconv("dw", 3, dilation=6)
    assert layer.dilation == 6


def test_bn_has_gamma_beta():
    b = GraphBuilder("t", (4, 4), 10)
    layer = b.bn("bn")
    assert dict(layer.weights) == {"gamma": 10, "beta": 10}


def test_relu_add_concat_no_params():
    b = GraphBuilder("t", (4, 4), 10)
    assert b.relu("r").params == 0
    assert b.add("a").params == 0
    layer = b.concat("c", extra_ch=6)
    assert layer.params == 0 and layer.out_ch == 16


def test_fc_requires_global_feature():
    b = GraphBuilder("t", (4, 4), 10)
    with pytest.raises(ValueError):
        b.fc("fc", 5)
    b.global_avgpool("gap")
    layer = b.fc("fc", 5)
    assert layer.params == 10 * 5 + 5


def test_upsample_geometry():
    b = GraphBuilder("t", (33, 33), 256)
    layer = b.upsample("up", (129, 129))
    assert layer.out_hw == (129, 129)
    assert layer.out_ch == 256


def test_checkpoint_restore_roundtrip():
    b = GraphBuilder("t", (16, 16), 3)
    b.conv("c1", 8, 3, stride=2)
    state = b.checkpoint()
    b.conv("c2", 32, 3, stride=2)
    assert b.hw == (4, 4)
    b.restore(state)
    assert b.hw == (8, 8) and b.ch == 8


def test_grad_tensor_nbytes():
    t = GradTensor("x", 100, 0)
    assert t.nbytes == 400


def test_grad_tensors_reverse_order():
    b = GraphBuilder("t", (4, 4), 3)
    b.conv("first", 8, 3)
    b.relu("mid")
    b.conv("last", 8, 3, bias=True)
    tensors = b.graph.grad_tensors()
    assert [t.name for t in tensors] == ["last/kernel", "last/bias", "first/kernel"]
    assert [t.emission_index for t in tensors] == [0, 1, 2]


def test_graph_totals():
    b = GraphBuilder("t", (4, 4), 3)
    b.conv("c", 8, 1)
    b.bn("bn")
    g = b.graph
    assert g.total_params == 3 * 8 + 16
    assert g.gradient_nbytes == g.total_params * FP32


def test_graph_layer_lookup():
    b = GraphBuilder("t", (4, 4), 3)
    b.conv("c", 8, 1)
    assert b.graph.layer("c").out_ch == 8
    with pytest.raises(KeyError):
        b.graph.layer("missing")


def test_validate_rejects_duplicates():
    b = GraphBuilder("t", (4, 4), 3)
    b.conv("c", 8, 1)
    b.graph.layers.append(b.graph.layers[0])
    with pytest.raises(ValueError, match="duplicate"):
        b.graph.validate()


def test_validate_rejects_degenerate():
    from repro.models.layers import ModelGraph

    g = ModelGraph("t", (4, 4), 3)
    g.layers.append(LayerSpec("bad", "conv", (0, 4), 8, 10, 10))
    with pytest.raises(ValueError, match="degenerate"):
        g.validate()


def test_summary_contains_totals():
    b = GraphBuilder("t", (4, 4), 3)
    b.conv("c", 8, 1)
    s = b.graph.summary()
    assert "total params" in s and "c" in s
