"""Reference checks for the ResNet-50 and DeepLab-v3+ reconstructions."""

import pytest

from repro.models import (
    ModelCost,
    build_deeplabv3plus,
    build_resnet50,
)


@pytest.fixture(scope="module")
def resnet():
    return build_resnet50()


@pytest.fixture(scope="module")
def deeplab():
    return build_deeplabv3plus()


class TestResNet50:
    def test_exact_parameter_count(self, resnet):
        """The canonical published number for ResNet-50 (incl. FC + BN)."""
        assert resnet.total_params == 25_557_032

    def test_flops_match_published(self, resnet):
        """~4.1 GMACs = ~8.2 GFLOPs forward at 224x224."""
        assert resnet.total_flops / 1e9 == pytest.approx(8.2, rel=0.03)

    def test_stage_output_geometry(self, resnet):
        assert resnet.layer("conv1").out_hw == (112, 112)
        assert resnet.layer("conv2_block3_out_relu").out_hw == (56, 56)
        assert resnet.layer("conv5_block3_out_relu").out_hw == (7, 7)
        assert resnet.layer("conv5_block3_out_relu").out_ch == 2048
        assert resnet.layer("fc1000").out_ch == 1000

    def test_gradient_tensor_count(self, resnet):
        # 53 convs + 53 BNs x 2 + fc kernel + fc bias = 161
        assert len(resnet.grad_tensors()) == 161

    def test_shortcut_only_on_downsample_blocks(self, resnet):
        names = [l.name for l in resnet.layers]
        assert "conv3_block1_shortcut_conv" in names
        assert "conv3_block2_shortcut_conv" not in names


class TestDeepLab:
    def test_parameter_count_near_published(self, deeplab):
        """Published DLv3+ (Xception-65) has ~41M trainable parameters."""
        assert deeplab.total_params == pytest.approx(41e6, rel=0.03)

    def test_output_stride_16_geometry(self, deeplab):
        assert deeplab.layer("entry_flow_block3_add").out_hw == (33, 33)
        assert deeplab.layer("exit_flow_sepconv3_pointwise").out_ch == 2048
        assert deeplab.layer("aspp_projection_conv").out_hw == (33, 33)
        assert deeplab.layer("decoder_concat").out_hw == (129, 129)
        assert deeplab.layer("logits_upsample").out_hw == (513, 513)
        assert deeplab.layer("logits_conv").out_ch == 21

    def test_decoder_concat_channels(self, deeplab):
        # 256 (upsampled ASPP) + 48 (reduced low level)
        assert deeplab.layer("decoder_concat").out_ch == 304

    def test_many_gradient_tensors(self, deeplab):
        """DLv3+ has hundreds of small tensors -> fusion matters (E2)."""
        tensors = deeplab.grad_tensors()
        assert len(tensors) > 400
        sizes = sorted(t.nbytes for t in tensors)
        # Long-tailed: the median tensor is tiny, the max is MB-scale.
        assert sizes[len(sizes) // 2] < 16_000
        assert sizes[-1] > 4_000_000

    def test_aspp_branch_count(self, deeplab):
        names = [l.name for l in deeplab.layers]
        assert "aspp0_conv" in names
        for i in (1, 2, 3):
            assert f"aspp{i}_depthwise" in names
        assert "image_pooling_conv" in names

    def test_atrous_rates_recorded(self, deeplab):
        assert deeplab.layer("aspp1_depthwise").dilation == 6
        assert deeplab.layer("aspp2_depthwise").dilation == 12
        assert deeplab.layer("aspp3_depthwise").dilation == 18

    def test_output_stride_8_variant(self):
        g = build_deeplabv3plus(output_stride=8)
        assert g.layer("entry_flow_block3_add").out_hw == (65, 65)

    def test_invalid_output_stride(self):
        with pytest.raises(ValueError):
            build_deeplabv3plus(output_stride=4)

    def test_custom_classes(self):
        g = build_deeplabv3plus(num_classes=19)  # cityscapes
        assert g.layer("logits_conv").out_ch == 19


class TestCalibration:
    """The headline single-GPU numbers (experiment E1)."""

    def test_resnet50_throughput(self, resnet):
        ips = ModelCost(resnet).profile(128).images_per_second
        assert ips == pytest.approx(300, rel=0.05)

    def test_deeplab_throughput(self, deeplab):
        ips = ModelCost(deeplab).profile(8).images_per_second
        assert ips == pytest.approx(6.7, rel=0.05)

    def test_throughput_ratio(self, resnet, deeplab):
        r = ModelCost(resnet).profile(128).images_per_second
        d = ModelCost(deeplab).profile(8).images_per_second
        assert 40 < r / d < 50  # paper: ~45x


class TestCostModel:
    def test_profile_consistency(self, resnet):
        prof = ModelCost(resnet).profile(32)
        assert prof.compute_s == pytest.approx(
            prof.forward_s + prof.backward_s + prof.optimizer_s
        )
        assert prof.images_per_second == pytest.approx(32 / prof.compute_s)

    def test_emission_schedule_ordering(self, deeplab):
        prof = ModelCost(deeplab).profile(8)
        offsets = [t for t, _ in prof.emission_schedule]
        assert offsets == sorted(offsets)
        assert offsets[-1] == pytest.approx(prof.backward_s)
        indices = [g.emission_index for _, g in prof.emission_schedule]
        assert indices == list(range(len(indices)))

    def test_emission_first_tensor_is_last_layer(self, deeplab):
        prof = ModelCost(deeplab).profile(8)
        first = prof.emission_schedule[0][1]
        assert first.name.startswith("logits_conv")

    def test_emission_total_bytes_match_params(self, resnet):
        prof = ModelCost(resnet).profile(8)
        assert sum(g.nbytes for _, g in prof.emission_schedule) == (
            resnet.gradient_nbytes
        )

    def test_batch_scaling_superlinear_throughput(self, resnet):
        """Bigger batches amortize launch overhead: img/s grows with bs."""
        mc = ModelCost(resnet)
        assert (
            mc.profile(64).images_per_second < mc.profile(128).images_per_second
        )

    def test_invalid_batch(self, resnet):
        with pytest.raises(ValueError):
            ModelCost(resnet).profile(0)

    def test_backward_slower_than_forward(self, resnet):
        prof = ModelCost(resnet).profile(32)
        assert prof.backward_s > prof.forward_s

    def test_kernel_factor_validation(self):
        from repro.cluster import V100

        with pytest.raises(ValueError):
            V100.kernel_seconds(1.0, 1.0, compute_factor=0)
