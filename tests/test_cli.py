"""Tests for the `python -m repro` command-line interface."""

import json

import pytest

from repro.__main__ import EXPERIMENTS, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for exp_id in EXPERIMENTS:
        assert exp_id in out


def test_run_unknown_id(capsys):
    assert main(["run", "E99"]) == 2
    assert "unknown" in capsys.readouterr().err


def test_run_quick_e2(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    assert main(["run", "E2", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "E2" in out and "tensor" in out.lower()
    saved = json.loads((tmp_path / "bench_results" / "e2.json").read_text())
    assert saved["experiment"] == "E2"


def test_measure_command(capsys):
    assert main(["measure", "--gpus", "2", "--iterations", "2",
                 "--config", "tuned"]) == 0
    out = capsys.readouterr().out
    assert "img/s" in out and "efficiency" in out


def test_measure_with_model(capsys):
    assert main(["measure", "--gpus", "2", "--iterations", "2",
                 "--model", "mobilenetv2"]) == 0
    assert "mobilenetv2" in capsys.readouterr().out


def test_every_registered_experiment_has_quick_kwargs():
    for exp_id, (desc, driver, full, quick) in EXPERIMENTS.items():
        assert callable(driver), exp_id
        assert isinstance(full, dict) and isinstance(quick, dict)
        assert desc


def test_version_flag(capsys):
    from repro.__main__ import package_version

    with pytest.raises(SystemExit) as exc:
        main(["--version"])
    assert exc.value.code == 0
    out = capsys.readouterr().out
    assert package_version() in out


def test_package_version_matches_source():
    import repro
    from repro.__main__ import package_version

    assert package_version() == repro.__version__


def test_measure_json_includes_attribution(capsys):
    assert main(["measure", "--gpus", "2", "--iterations", "2", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["gpus"] == 2
    assert payload["images_per_second"] > 0
    att = payload["attribution"]
    assert att["max_sum_error"] < 0.02
    assert set(att["shares"]) == {
        "compute", "input_stall", "straggler_skew",
        "exposed_comm", "fusion_wait", "fault_suspect",
    }
    assert sum(att["shares"].values()) == pytest.approx(1.0)


def test_telemetry_command_prints_and_exports(tmp_path, capsys):
    out_dir = tmp_path / "export"
    assert main(["telemetry", "--gpus", "2", "--iterations", "2",
                 "--export", str(out_dir)]) == 0
    out = capsys.readouterr().out
    assert "attribution" in out and "fusion_wait" in out
    prom = (out_dir / "metrics.prom").read_text()
    assert "# TYPE train_iterations_total counter" in prom
    assert (out_dir / "telemetry.jsonl").stat().st_size > 0
    trace = json.loads((out_dir / "trace.json").read_text())
    assert trace["traceEvents"]


def test_run_quick_e14(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    assert main(["run", "E14", "--quick"]) == 0
    saved = json.loads((tmp_path / "bench_results" / "e14.json").read_text())
    assert saved["experiment"] == "E14"
    assert saved["measured"]["max_bucket_sum_error"] < 0.02
    # Tuned strictly beats default on tunable overhead at >= 24 GPUs.
    assert saved["measured"]["overhead_delta_24"] > 0
