"""Tests for the `python -m repro` command-line interface."""

import json

import pytest

from repro.__main__ import EXPERIMENTS, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for exp_id in EXPERIMENTS:
        assert exp_id in out


def test_run_unknown_id(capsys):
    assert main(["run", "E99"]) == 2
    assert "unknown" in capsys.readouterr().err


def test_run_quick_e2(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    assert main(["run", "E2", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "E2" in out and "tensor" in out.lower()
    saved = json.loads((tmp_path / "bench_results" / "e2.json").read_text())
    assert saved["experiment"] == "E2"


def test_measure_command(capsys):
    assert main(["measure", "--gpus", "2", "--iterations", "2",
                 "--config", "tuned"]) == 0
    out = capsys.readouterr().out
    assert "img/s" in out and "efficiency" in out


def test_measure_with_model(capsys):
    assert main(["measure", "--gpus", "2", "--iterations", "2",
                 "--model", "mobilenetv2"]) == 0
    assert "mobilenetv2" in capsys.readouterr().out


def test_every_registered_experiment_has_quick_kwargs():
    for exp_id, (desc, driver, full, quick) in EXPERIMENTS.items():
        assert callable(driver), exp_id
        assert isinstance(full, dict) and isinstance(quick, dict)
        assert desc
