"""Tests for the `python -m repro` command-line interface."""

import json

import pytest

from repro.__main__ import EXPERIMENTS, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for exp_id in EXPERIMENTS:
        assert exp_id in out


def test_run_unknown_id(capsys):
    assert main(["run", "E99"]) == 2
    assert "unknown" in capsys.readouterr().err


def test_run_quick_e2(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    assert main(["run", "E2", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "E2" in out and "tensor" in out.lower()
    saved = json.loads((tmp_path / "bench_results" / "e2.json").read_text())
    assert saved["experiment"] == "E2"


def test_measure_command(capsys):
    assert main(["measure", "--gpus", "2", "--iterations", "2",
                 "--config", "tuned"]) == 0
    out = capsys.readouterr().out
    assert "img/s" in out and "efficiency" in out


def test_measure_with_model(capsys):
    assert main(["measure", "--gpus", "2", "--iterations", "2",
                 "--model", "mobilenetv2"]) == 0
    assert "mobilenetv2" in capsys.readouterr().out


def test_every_registered_experiment_has_quick_kwargs():
    for exp_id, (desc, driver, full, quick) in EXPERIMENTS.items():
        assert callable(driver), exp_id
        assert isinstance(full, dict) and isinstance(quick, dict)
        assert desc


def test_version_flag(capsys):
    from repro.__main__ import package_version

    with pytest.raises(SystemExit) as exc:
        main(["--version"])
    assert exc.value.code == 0
    out = capsys.readouterr().out
    assert package_version() in out


def test_package_version_matches_source():
    import repro
    from repro.__main__ import package_version

    assert package_version() == repro.__version__


def test_measure_json_includes_attribution(capsys):
    assert main(["measure", "--gpus", "2", "--iterations", "2", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["gpus"] == 2
    assert payload["images_per_second"] > 0
    att = payload["attribution"]
    assert att["max_sum_error"] < 0.02
    assert set(att["shares"]) == {
        "compute", "input_stall", "straggler_skew",
        "exposed_comm", "fusion_wait", "fault_suspect",
    }
    assert sum(att["shares"].values()) == pytest.approx(1.0)


def test_telemetry_command_prints_and_exports(tmp_path, capsys):
    out_dir = tmp_path / "export"
    assert main(["telemetry", "--gpus", "2", "--iterations", "2",
                 "--export", str(out_dir)]) == 0
    out = capsys.readouterr().out
    assert "attribution" in out and "fusion_wait" in out
    prom = (out_dir / "metrics.prom").read_text()
    assert "# TYPE train_iterations_total counter" in prom
    assert (out_dir / "telemetry.jsonl").stat().st_size > 0
    trace = json.loads((out_dir / "trace.json").read_text())
    assert trace["traceEvents"]


def test_run_quick_e14(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    assert main(["run", "E14", "--quick"]) == 0
    saved = json.loads((tmp_path / "bench_results" / "e14.json").read_text())
    assert saved["experiment"] == "E14"
    assert saved["measured"]["max_bucket_sum_error"] < 0.02
    # Tuned strictly beats default on tunable overhead at >= 24 GPUs.
    assert saved["measured"]["overhead_delta_24"] > 0


def test_registry_backs_the_legacy_table():
    from repro.bench.registry import REGISTRY

    assert set(EXPERIMENTS) == set(REGISTRY)
    for exp_id, (desc, driver, full, quick) in EXPERIMENTS.items():
        spec = REGISTRY[exp_id]
        assert driver is spec.fn and desc == spec.title


def test_list_marks_parallelizable(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "par" in out.splitlines()[0]
    assert any(line.startswith("E4") and "yes" in line
               for line in out.splitlines())


def test_run_parallel_cold_then_warm(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    assert main(["run", "E4", "--quick", "--parallel", "--workers", "2"]) == 0
    cold = capsys.readouterr().out
    assert "0 hits" in cold
    cold_payload = json.loads(
        (tmp_path / "bench_results" / "e4.json").read_text())
    assert cold_payload["meta"]["runner"]["cache_misses"] > 0

    assert main(["run", "E4", "--quick", "--parallel", "--workers", "2"]) == 0
    warm = capsys.readouterr().out
    assert "0 misses" in warm
    warm_payload = json.loads(
        (tmp_path / "bench_results" / "e4.json").read_text())
    assert warm_payload["meta"]["runner"]["executed"] == 0
    # The measurement payload is bit-identical; only meta differs.
    for key in ("rows", "paper", "measured", "notes", "title"):
        assert warm_payload[key] == cold_payload[key]


def test_run_stamps_variant_meta(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    assert main(["run", "E2", "--quick"]) == 0
    saved = json.loads((tmp_path / "bench_results" / "e2.json").read_text())
    assert saved["meta"]["variant"] == "quick"
    assert "runner" not in saved["meta"]  # serial run: no runner stats


def test_cache_stats_and_clear(tmp_path, capsys):
    cache_dir = tmp_path / "cache"
    from repro.runner import ResultCache

    ResultCache(directory=cache_dir).put("a" * 64, {"v": 1})
    assert main(["cache", "stats", "--dir", str(cache_dir)]) == 0
    out = capsys.readouterr().out
    assert "entries         : 1" in out
    assert main(["cache", "stats", "--dir", str(cache_dir), "--json"]) == 0
    snap = json.loads(capsys.readouterr().out)
    assert snap["entries"] == 1 and "salt" in snap
    assert main(["cache", "clear", "--dir", str(cache_dir)]) == 0
    assert "removed 1" in capsys.readouterr().out
    assert main(["cache", "stats", "--dir", str(cache_dir), "--json"]) == 0
    assert json.loads(capsys.readouterr().out)["entries"] == 0


class FakeSpec:
    """Registry stand-in that records run order and can misbehave."""

    parallelizable = False

    def __init__(self, exp_id, ran, fail=False, interrupt=False):
        self.id = exp_id
        self.ran = ran
        self.fail = fail
        self.interrupt = interrupt

    def run(self, quick=False, runner=None):
        self.ran.append(self.id)
        if self.interrupt:
            raise KeyboardInterrupt
        if self.fail:
            raise RuntimeError(f"{self.id} exploded")
        from repro.bench.harness import ExperimentResult

        return ExperimentResult(self.id, "fake")


def _fake_registry(cli, monkeypatch, ran, fail=(), interrupt=()):
    monkeypatch.setattr(cli, "save_result", lambda r: "unsaved")
    fake = {
        exp_id: FakeSpec(exp_id, ran, fail=exp_id in fail,
                         interrupt=exp_id in interrupt)
        for exp_id in cli.REGISTRY
    }
    monkeypatch.setattr(cli, "REGISTRY", fake)
    return fake


def test_run_all_expands_to_every_experiment(tmp_path, monkeypatch):
    from repro import __main__ as cli

    monkeypatch.chdir(tmp_path)
    ran = []
    fake = _fake_registry(cli, monkeypatch, ran)
    assert cli.cmd_run(["all"], quick=True) == 0
    assert ran == list(fake)


def test_run_journals_every_experiment(tmp_path, monkeypatch):
    from repro import __main__ as cli
    from repro.runner import RunJournal

    monkeypatch.chdir(tmp_path)
    _fake_registry(cli, monkeypatch, [])
    assert cli.cmd_run(["E1", "E2"], quick=True) == 0
    journal = RunJournal()
    events = [e["event"] for e in journal.events()]
    assert events == ["sweep_start", "experiment_start", "experiment_done",
                      "experiment_start", "experiment_done", "sweep_done"]
    assert journal.completed("quick") == {"E1", "E2"}


def test_run_failed_experiment_continues_and_reports(tmp_path, monkeypatch,
                                                     capsys):
    from repro import __main__ as cli
    from repro.runner import RunJournal

    monkeypatch.chdir(tmp_path)
    ran = []
    _fake_registry(cli, monkeypatch, ran, fail={"E2"})
    assert cli.cmd_run(["E1", "E2", "E3"], quick=True) == 1
    assert ran == ["E1", "E2", "E3"]  # the failure did not sink the sweep
    err = capsys.readouterr().err
    assert "E2 failed" in err
    journal = RunJournal()
    assert journal.completed("quick") == {"E1", "E3"}
    failed = [e for e in journal.events()
              if e["event"] == "experiment_failed"]
    assert [e["experiment"] for e in failed] == ["E2"]
    assert "exploded" in failed[0]["error"]


def test_run_interrupt_then_resume_completes_the_rest(tmp_path, monkeypatch,
                                                      capsys):
    from repro import __main__ as cli
    from repro.runner import RunJournal

    monkeypatch.chdir(tmp_path)
    ran = []
    fake = _fake_registry(cli, monkeypatch, ran, interrupt={"E3"})
    # Ctrl-C lands mid-sweep: clean journal, exit 130, resume hint.
    assert cli.cmd_run(["E1", "E2", "E3", "E4"], quick=True) == 130
    assert ran == ["E1", "E2", "E3"]
    assert "--resume" in capsys.readouterr().err
    events = [e["event"] for e in RunJournal().events()]
    assert events[-1] == "sweep_interrupted"
    assert "experiment_done" in events

    # Resume: completed experiments are skipped, the rest run.
    fake["E3"].interrupt = False
    ran.clear()
    assert cli.cmd_run(["E1", "E2", "E3", "E4"], quick=True,
                       resume=True) == 0
    assert ran == ["E3", "E4"]
    out = capsys.readouterr().out
    assert "skipping 2" in out
    assert RunJournal().completed("quick") == {"E1", "E2", "E3", "E4"}

    # A second resume finds nothing left.
    ran.clear()
    assert cli.cmd_run(["E1", "E2", "E3", "E4"], quick=True,
                       resume=True) == 0
    assert ran == []
    assert "nothing left" in capsys.readouterr().out


def test_resume_respects_variant(tmp_path, monkeypatch):
    from repro import __main__ as cli

    monkeypatch.chdir(tmp_path)
    ran = []
    _fake_registry(cli, monkeypatch, ran)
    assert cli.cmd_run(["E1"], quick=True) == 0
    # A quick-tier completion must not satisfy a full-tier resume.
    ran.clear()
    assert cli.cmd_run(["E1"], quick=False, resume=True) == 0
    assert ran == ["E1"]


def test_run_custom_journal_path(tmp_path, monkeypatch):
    from repro import __main__ as cli
    from repro.runner import RunJournal

    monkeypatch.chdir(tmp_path)
    _fake_registry(cli, monkeypatch, [])
    journal_path = tmp_path / "elsewhere" / "j.jsonl"
    assert cli.cmd_run(["E1"], quick=True,
                       journal_path=str(journal_path)) == 0
    assert journal_path.exists()
    assert not (tmp_path / "bench_results" / "run_journal.jsonl").exists()
    assert RunJournal(journal_path).completed("quick") == {"E1"}


# -- span tracing / critical-path surfaces ----------------------------------

def test_measure_json_trace_round_trip(capsys):
    assert main(["measure", "--gpus", "2", "--iterations", "2",
                 "--json", "--trace"]) == 0
    payload = json.loads(capsys.readouterr().out)
    summary = payload["trace_summary"]
    assert {"critical_path_ms", "iterations", "level",
            "exposed_allreduce_share", "shares",
            "top_spans"} <= set(summary)
    assert summary["critical_path_ms"] > 0
    assert summary["level"] == "spans"
    for span in summary["top_spans"]:
        assert {"cat", "name", "seconds_per_iter", "share"} <= set(span)


def test_measure_trace_text_mentions_critical_path(capsys):
    assert main(["measure", "--gpus", "2", "--iterations", "2",
                 "--trace"]) == 0
    out = capsys.readouterr().out
    assert "critical path" in out and "allreduce share" in out


def test_trace_run_exports_and_explain(tmp_path, capsys):
    out_dir = tmp_path / "trace_out"
    assert main(["trace", "run", "--gpus", "6", "--iterations", "2",
                 "--level", "links", "--out", str(out_dir)]) == 0
    report = capsys.readouterr().out
    assert "critical path" in report and "top bottleneck spans" in report
    for name in ("spans.json", "trace.json", "critical_path.txt"):
        assert (out_dir / name).exists(), name
    from repro.trace import load_spans

    assert load_spans(out_dir / "spans.json").by_cat("ITERATION")
    # The exported span file feeds straight back into `repro explain`.
    assert main(["explain", str(out_dir / "spans.json")]) == 0
    assert "critical path" in capsys.readouterr().out


def test_explain_unknown_target_fails(capsys):
    assert main(["explain", "E99"]) == 2
    assert "unknown target" in capsys.readouterr().err


def test_bench_compare_exit_codes(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    assert main(["run", "E2", "--quick"]) == 0
    capsys.readouterr()
    baseline = tmp_path / "bench_results" / "e2.json"

    # Fresh rerun of the same quick tier matches its own baseline.
    assert main(["bench", "compare", str(baseline)]) == 0
    assert "E2: OK" in capsys.readouterr().out

    # Injected regression: doubled tensor_count trips the sentinel.
    doc = json.loads(baseline.read_text())
    doc["measured"]["tensor_count"] *= 2
    baseline.write_text(json.dumps(doc))
    artifact = tmp_path / "diff.json"
    assert main(["bench", "compare", str(baseline),
                 "--artifact", str(artifact)]) == 1
    out = capsys.readouterr().out
    assert "REGRESSION" in out and "tensor_count" in out
    assert json.loads(artifact.read_text())["ok"] is False

    # Unreadable baseline is a usage error, not a regression.
    assert main(["bench", "compare", str(tmp_path / "nope.json")]) == 2


def test_run_trace_dir_status_line(tmp_path, monkeypatch, capsys):
    from repro import __main__ as cli

    monkeypatch.chdir(tmp_path)
    _fake_registry(cli, monkeypatch, [])
    assert cli.cmd_run(["E1"], quick=True,
                       trace_dir=str(tmp_path / "traces")) == 0
    assert "E1 trace capture: no traced points" in capsys.readouterr().out


def test_run_e16_trace_dir_captures_files(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    assert main(["run", "E16", "--quick", "--trace-dir", "traces"]) == 0
    out = capsys.readouterr().out
    assert "[E16 trace capture: 4 trace file(s) -> traces]" in out
    files = list((tmp_path / "traces").glob("*.trace.json"))
    assert len(files) == 4
    saved = json.loads((tmp_path / "bench_results" / "e16.json").read_text())
    assert saved["trace_summary"]["critical_path_ms"] > 0
