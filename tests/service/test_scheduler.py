"""End-to-end scheduling: byte-identity, cache hits, exactly-once."""

import json

import pytest

from repro.bench.registry import REGISTRY
from repro.runner import RunnerError
from repro.service import (
    JobState,
    Service,
    ServiceClient,
    ServiceConfig,
    ServiceError,
)


def make_service(tmp_path, **overrides):
    kwargs = dict(state_dir=tmp_path / "state", workers=1)
    kwargs.update(overrides)
    return Service(ServiceConfig(**kwargs))


def run_job(service, client, **submit_kwargs):
    job = client.submit(**submit_kwargs)
    finished = client.wait(job["id"], timeout_s=120.0)
    return finished


def test_job_envelope_byte_identical_to_serial_run(tmp_path):
    service = make_service(tmp_path)
    client = ServiceClient(app=service.app)
    service.start()
    try:
        job = run_job(service, client, experiment="E3", variant="quick")
        assert job["state"] == JobState.DONE
        got = client.result_bytes(job["id"])
    finally:
        service.stop()

    expected = REGISTRY["E3"].run(quick=True)
    expected.meta = {"variant": "quick"}
    assert got == expected.to_json().encode("utf-8")


def test_identical_resubmission_served_from_cache(tmp_path):
    service = make_service(tmp_path)
    client = ServiceClient(app=service.app)
    service.start()
    try:
        first = run_job(service, client, experiment="E3", variant="quick")
        assert first["state"] == JobState.DONE
        assert first["runner"]["executed"] > 0

        second = run_job(service, client, experiment="E3", variant="quick")
        assert second["state"] == JobState.DONE
        # The dedup layer at work: every point resolves from cache.
        assert second["runner"]["executed"] == 0
        assert second["runner"]["cache_hits"] > 0

        assert (client.result_bytes(first["id"])
                == client.result_bytes(second["id"]))
    finally:
        service.stop()


def test_points_job_and_resubmission(tmp_path):
    points = [
        {"kind": "train", "gpus": 2, "iterations": 2},
        {"kind": "osu_allreduce", "gpus": 2, "nbytes": 1024,
         "iterations": 3},
    ]
    service = make_service(tmp_path)
    client = ServiceClient(app=service.app)
    service.start()
    try:
        job = run_job(service, client, points=points)
        assert job["state"] == JobState.DONE
        envelope = client.result(job["id"])
        assert envelope["kind"] == "points"
        summaries = [row["summary"] for row in envelope["rows"]]
        assert summaries[0]["images_per_second"] > 0
        assert summaries[1]["latency_us"] > 0

        again = run_job(service, client, points=points)
        assert again["runner"]["executed"] == 0
        assert (client.result_bytes(job["id"])
                == client.result_bytes(again["id"]))
    finally:
        service.stop()


def test_transient_error_requeues_then_fails(tmp_path):
    service = make_service(tmp_path)
    client = ServiceClient(app=service.app)
    job = client.submit(experiment="E2")

    def explode(job):
        raise ValueError("transient wobble")

    service.scheduler._run_experiment = explode
    scheduler = service.scheduler
    leased = service.queue.lease("w0")
    scheduler._execute(leased)
    requeued = client.job(job["id"])
    assert requeued["state"] == JobState.SUBMITTED
    assert requeued["attempts"] == 1
    assert "transient wobble" in requeued["error"]

    # Second failure exhausts job_retries=1 and is terminal.
    scheduler._execute(service.queue.lease("w0"))
    assert client.job(job["id"])["state"] == JobState.FAILED


def test_poison_job_quarantines_without_retry(tmp_path):
    service = make_service(tmp_path)
    client = ServiceClient(app=service.app)
    job = client.submit(experiment="E2")

    def poison(job):
        raise RunnerError("1 point(s) quarantined: boom")

    service.scheduler._run_experiment = poison
    service.scheduler._execute(service.queue.lease("w0"))
    doc = client.job(job["id"])
    assert doc["state"] == JobState.QUARANTINED
    assert doc["attempts"] == 1
    with pytest.raises(ServiceError) as err:
        client.result(job["id"])
    assert err.value.status == 409


@pytest.mark.chaos
def test_crashed_scheduler_restart_completes_exactly_once(tmp_path):
    # A predecessor process leased the job, started running it, then
    # died without journaling an outcome.
    state_dir = tmp_path / "state"
    crashed = Service(ServiceConfig(state_dir=state_dir, workers=1))
    job = ServiceClient(app=crashed.app).submit(experiment="E3")
    crashed.queue.lease("99999:repro-service-worker-0", lease_s=60.0)
    crashed.queue.mark_running(job["id"])
    del crashed  # simulated crash: no complete/fail ever journaled

    # `repro serve` restarts on the same state dir.
    service = Service(ServiceConfig(state_dir=state_dir, workers=1))
    client = ServiceClient(app=service.app)
    recovered = service.start()
    try:
        assert [j.id for j in recovered] == [job["id"]]
        finished = client.wait(job["id"], timeout_s=120.0)
    finally:
        service.stop()

    assert finished["state"] == JobState.DONE
    assert finished["recoveries"] == 1

    # Exactly once: a single DONE event in the journal, a single
    # result file on disk.
    events = [json.loads(line)["event"]
              for line in (state_dir / "queue.jsonl").read_text()
              .splitlines() if line]
    assert events.count("job_done") == 1
    results = list((state_dir / "results").iterdir())
    assert [p.name for p in results] == [f"{job['id']}.json"]


@pytest.mark.chaos
def test_sweep_reclaims_remote_leases_but_not_local(tmp_path):
    service = make_service(tmp_path)
    client = ServiceClient(app=service.app)
    stuck = client.submit(experiment="E2")
    # A remote holder whose lease expired long ago.
    service.queue.lease("elsewhere:worker", lease_s=-1.0)
    touched = service.scheduler.sweep_leases()
    assert [j.id for j in touched] == [stuck["id"]]
    service.start()
    try:
        assert client.wait(stuck["id"], timeout_s=60.0)["state"] == JobState.DONE
    finally:
        service.stop()
