"""Spec validation and the job model."""

import pytest

from repro.service import Job, SpecError, build_points, parse_spec, spec_key


# -- experiment specs -----------------------------------------------------

def test_experiment_spec_roundtrip():
    spec = parse_spec({"experiment": "E6", "variant": "quick"})
    assert spec == {"experiment": "E6", "variant": "quick"}


def test_experiment_defaults_to_quick():
    assert parse_spec({"experiment": "E2"})["variant"] == "quick"


@pytest.mark.parametrize("payload,fragment", [
    ({"experiment": "E99"}, "unknown experiment"),
    ({"experiment": "E6", "variant": "paper"}, "variant"),
    ({}, "exactly one"),
    ({"experiment": "E6", "points": []}, "exactly one"),
    ([1, 2], "JSON object"),
])
def test_bad_experiment_specs(payload, fragment):
    with pytest.raises(SpecError, match=fragment):
        parse_spec(payload)


# -- points specs ---------------------------------------------------------

def test_train_point_normalization_and_build():
    spec = parse_spec({"points": [{"kind": "train", "gpus": 6,
                                   "iterations": 2}]})
    point = spec["points"][0]
    assert point["config"] == "tuned" and point["model"] == "deeplab"
    built = build_points(spec)
    assert built[0].gpus == 6 and built[0].iterations == 2
    assert built[0].key()  # hashable into the cache


def test_osu_point_build():
    spec = parse_spec({"points": [{"kind": "osu_allreduce", "gpus": 4,
                                   "nbytes": 4096}]})
    built = build_points(spec)
    assert built[0].nbytes == 4096
    assert built[0].library.name == "MVAPICH2-GDR"


@pytest.mark.parametrize("point,fragment", [
    ({"kind": "warp"}, "kind"),
    ({"kind": "train", "fault": "x"}, "unknown field"),
    ({"kind": "train", "gpus": "six"}, "expected int"),
    ({"kind": "train", "gpus": 0}, "gpus"),
    ({"kind": "train", "config": "mystery"}, "config"),
    ({"kind": "train", "model": "gpt"}, "model"),
    ({"kind": "osu_allreduce", "library": "OpenMPI-9"}, "library"),
    ({"kind": "train", "iterations": 0}, "iterations"),
    ("not-an-object", "expected an object"),
])
def test_bad_points(point, fragment):
    with pytest.raises(SpecError, match=fragment):
        parse_spec({"points": [point]})


def test_points_must_be_nonempty_list():
    with pytest.raises(SpecError, match="non-empty"):
        parse_spec({"points": []})


# -- keys and serialization -----------------------------------------------

def test_spec_key_is_canonical():
    a = spec_key({"experiment": "E6", "variant": "quick"})
    b = spec_key({"variant": "quick", "experiment": "E6"})
    assert a == b and len(a) == 64
    assert a != spec_key({"experiment": "E6", "variant": "full"})


def test_job_dict_roundtrip():
    job = Job.create(parse_spec({"experiment": "E2"}), tenant="alice",
                     priority=3, now=12.5)
    clone = Job.from_dict(dict(job.to_dict(), unknown_future_field=1))
    assert clone == job
    assert clone.tenant == "alice" and clone.priority == 3
    assert not clone.terminal
