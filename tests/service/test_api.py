"""The REST API exercised entirely in-process (no sockets)."""

import json

import pytest

from repro.service import (
    JobState,
    Service,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    write_result,
)
from repro.telemetry import parse_prometheus


@pytest.fixture()
def service(tmp_path):
    return Service(ServiceConfig(state_dir=tmp_path / "state"))


@pytest.fixture()
def client(service):
    # Scheduler deliberately not started: these tests drive the queue
    # by hand so jobs stay in whatever state the test needs.
    return ServiceClient(app=service.app)


def test_healthz(client):
    doc = client.healthz()
    assert doc["status"] == "ok"
    assert doc["queue_depth"] == 0
    assert "version" in doc and "uptime_s" in doc


def test_experiments_lists_registry(client):
    experiments = client.experiments()
    ids = {e["id"] for e in experiments}
    assert {"E2", "E6"} <= ids
    sample = experiments[0]
    assert set(sample) == {"id", "title", "tags", "parallelizable",
                           "variants"}


def test_submit_show_list_cancel(client):
    job = client.submit(experiment="E6", variant="quick", priority=2)
    assert job["state"] == JobState.SUBMITTED
    assert job["spec"] == {"experiment": "E6", "variant": "quick"}
    assert job["priority"] == 2

    assert client.job(job["id"])["id"] == job["id"]
    assert [j["id"] for j in client.jobs()] == [job["id"]]
    assert client.jobs(state=JobState.DONE) == []

    cancelled = client.cancel(job["id"])
    assert cancelled["state"] == JobState.CANCELLED


def test_submit_points(client):
    job = client.submit(points=[{"kind": "train", "gpus": 2,
                                 "iterations": 2}])
    assert job["spec"]["points"][0]["gpus"] == 2


@pytest.mark.parametrize("payload,code", [
    (b"{not json", "bad_json"),
    (b'{"experiment": "E99"}', "bad_spec"),
    (b'{"experiment": "E6", "priority": "high"}', "bad_spec"),
])
def test_submit_rejections(service, payload, code):
    status, _ctype, body = service.app.handle("POST", "/v1/jobs", {},
                                              payload)
    assert status == 400
    assert json.loads(body)["error"]["code"] == code


def test_unknown_job_and_routes(client, service):
    with pytest.raises(ServiceError) as err:
        client.job("deadbeef")
    assert err.value.status == 404
    status, _, _ = service.app.handle("GET", "/no/such/route", {}, None)
    assert status == 404
    status, _, _ = service.app.handle("DELETE", "/v1/jobs", {}, None)
    assert status == 404


def test_result_conflicts_until_done(client, service):
    job = client.submit(experiment="E6")
    with pytest.raises(ServiceError) as err:
        client.result(job["id"])
    assert err.value.status == 409 and err.value.code == "not_done"

    # Complete it by hand; the result route must return the exact
    # stored bytes.
    path = service.config.results_dir / f"{job['id']}.json"
    payload = '{"schema_version": 2, "experiment": "E6"}\n'
    write_result(path, payload)
    service.queue.lease("w0")
    service.queue.mark_running(job["id"])
    service.queue.complete(job["id"], str(path))
    assert client.result_bytes(job["id"]) == payload.encode("utf-8")

    with pytest.raises(ServiceError) as err:
        client.cancel(job["id"])
    assert err.value.status == 409 and err.value.code == "not_cancellable"


def test_bad_state_filter(client):
    with pytest.raises(ServiceError) as err:
        client.jobs(state="IMAGINARY")
    assert err.value.status == 400


def test_metrics_parse_and_include_cache_gauges(client):
    client.submit(experiment="E6")
    parsed = parse_prometheus(client.metrics())
    names = {name for name, _labels in parsed["samples"]}
    assert "service_jobs_submitted_total" in names
    assert "service_queue_depth" in names
    cache_fields = {dict(labels).get("field")
                    for name, labels in parsed["samples"]
                    if name == "service_cache"}
    assert {"entries", "total_bytes", "hits", "misses",
            "hit_ratio"} <= cache_fields
    assert any(name == "service_requests_total"
               and dict(labels).get("route") == "v1/jobs"
               for name, labels in parsed["samples"])


def test_auth_and_quota(tmp_path):
    tokens = tmp_path / "tokens.json"
    tokens.write_text(json.dumps({"tokens": [
        {"token": "alice-secret", "tenant": "alice", "max_active_jobs": 1},
        {"token": "bob-secret", "tenant": "bob"},
    ]}))
    service = Service(ServiceConfig(state_dir=tmp_path / "state",
                                    tokens_path=tokens))

    anonymous = ServiceClient(app=service.app)
    with pytest.raises(ServiceError) as err:
        anonymous.jobs()
    assert err.value.status == 401

    intruder = ServiceClient(app=service.app, token="wrong")
    with pytest.raises(ServiceError) as err:
        intruder.jobs()
    assert err.value.status == 401

    # healthz/metrics stay open for probes and scrapers.
    assert anonymous.healthz()["status"] == "ok"
    assert "service_requests_total" in anonymous.metrics()

    alice = ServiceClient(app=service.app, token="alice-secret")
    job = alice.submit(experiment="E6")
    assert job["tenant"] == "alice"
    with pytest.raises(ServiceError) as err:
        alice.submit(experiment="E6")
    assert err.value.status == 429 and err.value.code == "quota_exceeded"

    # Bob has his own quota; alice frees hers by cancelling.
    bob = ServiceClient(app=service.app, token="bob-secret")
    assert bob.submit(experiment="E2")["tenant"] == "bob"
    alice.cancel(job["id"])
    assert alice.submit(experiment="E6")["state"] == JobState.SUBMITTED


def test_client_requires_exactly_one_transport(service):
    with pytest.raises(ValueError):
        ServiceClient()
    with pytest.raises(ValueError):
        ServiceClient(url="http://x", app=service.app)
    with pytest.raises(ValueError):
        ServiceClient(app=service.app).submit()
