"""One snapshot schema: `repro cache stats --json` == /metrics gauges.

The CLI and the service both publish the cache state through
``ResultCache.snapshot()`` with :data:`SNAPSHOT_STAT_FIELDS` pinning
the shared numeric schema — these tests hold the two surfaces to it.
"""

import json

import pytest

from repro.__main__ import main
from repro.runner import ResultCache
from repro.runner.cache import SNAPSHOT_STAT_FIELDS
from repro.service import Service, ServiceClient, ServiceConfig
from repro.telemetry import parse_prometheus


def test_snapshot_covers_the_shared_fields(tmp_path):
    snap = ResultCache(directory=tmp_path / "cache").snapshot()
    assert set(SNAPSHOT_STAT_FIELDS) <= set(snap)


def test_empty_cache_hit_ratio_is_zero(tmp_path):
    snap = ResultCache(directory=tmp_path / "cache").snapshot()
    assert snap["hit_ratio"] == 0.0
    assert snap["entries"] == 0 and snap["total_bytes"] == 0


def test_cli_stats_json_emits_the_schema(tmp_path, capsys):
    assert main(["cache", "stats", "--json",
                 "--dir", str(tmp_path / "cache")]) == 0
    snap = json.loads(capsys.readouterr().out)
    assert set(SNAPSHOT_STAT_FIELDS) <= set(snap)
    assert snap["hit_ratio"] == 0.0  # empty cache: no div-by-zero


def test_service_metrics_emit_the_same_fields(tmp_path):
    service = Service(ServiceConfig(state_dir=tmp_path / "state"))
    client = ServiceClient(app=service.app)
    parsed = parse_prometheus(client.metrics())
    emitted = {dict(labels).get("field")
               for name, labels in parsed["samples"]
               if name == "service_cache"}
    assert emitted == set(SNAPSHOT_STAT_FIELDS)
