"""The observability surface of the service API.

Covers the flight-recorder route, live job watching (long-poll and
SSE), the stage-latency histograms' Prometheus round trip, and the
acceptance gate that result envelopes are byte-identical whether the
event plane is on or off.
"""

import json
import threading

import pytest

from repro.obs import emitter, reset_emitter
from repro.obs.sse import parse_sse
from repro.service import (
    JobState,
    Service,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    write_result,
)
from repro.telemetry import parse_prometheus


@pytest.fixture(autouse=True)
def fresh_emitter():
    import os

    saved = {key: os.environ.pop(key, None)
             for key in ("REPRO_OBS", "REPRO_OBS_DIR")}
    reset_emitter()
    try:
        yield
    finally:
        reset_emitter()
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


@pytest.fixture()
def service(tmp_path):
    return Service(ServiceConfig(state_dir=tmp_path / "state"))


@pytest.fixture()
def client(service):
    return ServiceClient(app=service.app)


def finish_by_hand(service, job_id, payload='{"schema_version": 2}\n'):
    path = service.config.results_dir / f"{job_id}.json"
    write_result(path, payload)
    service.queue.lease("w0")
    service.queue.mark_running(job_id)
    service.queue.complete(job_id, str(path))
    return payload.encode("utf-8")


# -- GET /v1/events ---------------------------------------------------------

def test_events_route_pages_the_flight_recorder(client):
    job = client.submit(experiment="E6")
    page = client.events()
    names = [r["event"] for r in page["events"]]
    assert "job_submitted" in names
    submitted = next(r for r in page["events"]
                     if r["event"] == "job_submitted")
    assert submitted["ctx"]["job_id"] == job["id"]
    assert page["last_seq"] >= submitted["seq"]

    again = client.events(since=page["last_seq"])
    # Only the traffic caused by this request itself (http_request
    # debug events) can appear past the cursor.
    assert all(r["event"] == "http_request" for r in again["events"])


def test_events_route_validates_query(client):
    with pytest.raises(ServiceError) as err:
        client.transport.json("GET", "/v1/events?since=banana")
    assert err.value.status == 400 and err.value.code == "bad_query"


def test_every_request_carries_a_request_id(client):
    client.healthz()
    http = [r for r in emitter().recorder.since(0)
            if r["event"] == "http_request"]
    assert http
    assert all(r["ctx"].get("request_id") for r in http)


# -- job progress and long-polling ------------------------------------------

def test_progress_lands_on_the_job_doc(client, service):
    job = client.submit(experiment="E6")
    before = client.job(job["id"])
    assert before["progress"] == {}
    service.queue.lease("w0")
    service.queue.mark_running(job["id"])
    service.queue.set_progress(job["id"], 2, 8, point="p2", cached=True)
    service.queue.set_progress(job["id"], 3, 8, point="p3")
    doc = client.job(job["id"])
    assert doc["progress"]["done"] == 3 and doc["progress"]["total"] == 8
    assert doc["progress"]["cached"] == 1  # accumulated across calls
    assert doc["progress"]["point"] == "p3"
    assert doc["version"] > before["version"]


def test_progress_never_resurrects_a_terminal_job(client, service):
    job = client.submit(experiment="E6")
    finish_by_hand(service, job["id"])
    service.queue.set_progress(job["id"], 1, 8)
    assert client.job(job["id"])["progress"] == {}


def test_long_poll_returns_immediately_when_behind(client):
    job = client.submit(experiment="E6")
    doc = client.transport.json(
        "GET", f"/v1/jobs/{job['id']}/events?poll=1&since=-1&timeout=5")
    assert doc["changed"] is True
    assert doc["job"]["id"] == job["id"]


def test_long_poll_times_out_unchanged(client):
    job = client.submit(experiment="E6")
    version = client.job(job["id"])["version"]
    doc = client.transport.json(
        "GET", f"/v1/jobs/{job['id']}/events?poll=1"
               f"&since={version}&timeout=0.05")
    assert doc["changed"] is False and doc["job"]["version"] == version


def test_long_poll_wakes_on_transition(client, service):
    job = client.submit(experiment="E6")
    version = client.job(job["id"])["version"]
    timer = threading.Timer(0.1, service.queue.lease, args=("w0",))
    timer.start()
    try:
        doc = client.transport.json(
            "GET", f"/v1/jobs/{job['id']}/events?poll=1"
                   f"&since={version}&timeout=10")
    finally:
        timer.join()
    assert doc["changed"] is True
    assert doc["job"]["state"] == JobState.LEASED


def test_long_poll_unknown_job_404(client):
    with pytest.raises(ServiceError) as err:
        client.transport.json("GET", "/v1/jobs/nope/events?poll=1")
    assert err.value.status == 404


def test_client_follow_yields_docs_until_terminal(client, service):
    job = client.submit(experiment="E6")
    finish_by_hand(service, job["id"])
    docs = list(client.follow(job["id"], timeout_s=10.0))
    assert docs  # at least the terminal doc
    assert docs[-1]["state"] == JobState.DONE


# -- the SSE stream ---------------------------------------------------------

def sse_events(client, job_id, query=""):
    raw = client.transport.bytes("GET", f"/v1/jobs/{job_id}/events{query}")
    return parse_sse(raw.decode("utf-8").split("\n"))


def test_sse_stream_of_a_finished_job(client, service):
    job = client.submit(experiment="E6")
    payload = finish_by_hand(service, job["id"])
    events = sse_events(client, job["id"])
    assert [e.event for e in events] == ["state", "result", "end"]
    state = events[0].json()
    assert state["id"] == job["id"] and state["state"] == JobState.DONE
    assert events[0].retry_ms == 2000
    assert events[0].id == str(state["version"])
    # The acceptance bar: the result frame is the exact envelope bytes.
    assert events[1].data.encode("utf-8") == payload
    assert events[2].json()["state"] == JobState.DONE


def test_sse_result_frame_is_byte_exact_for_multiline_envelopes(
        client, service):
    job = client.submit(experiment="E6")
    payload = finish_by_hand(
        service, job["id"],
        payload=json.dumps({"schema_version": 2, "results": [1, 2]},
                           indent=1))
    events = sse_events(client, job["id"])
    assert events[1].event == "result"
    assert events[1].data.encode("utf-8") == payload


def test_sse_last_event_id_resumes_past_seen_versions(client, service):
    job = client.submit(experiment="E6")
    finish_by_hand(service, job["id"])
    version = client.job(job["id"])["version"]
    response = service.app.handle(
        "GET", f"/v1/jobs/{job['id']}/events",
        {"last-event-id": str(version)}, b"")
    raw = b"".join(response[2])
    events = parse_sse(raw.decode("utf-8").split("\n"))
    # Already caught up: no state replay, straight to result + end.
    assert [e.event for e in events] == ["result", "end"]


def test_sse_heartbeats_while_nothing_changes(client, service):
    job = client.submit(experiment="E6")
    frames = service.app.handle(
        "GET", f"/v1/jobs/{job['id']}/events?heartbeat=0.05", {}, b"")[2]
    first = next(iter(frames))
    comment = next(iter(frames))
    frames.close()
    events = parse_sse((first + comment).decode("utf-8").split("\n"))
    assert events[0].event == "state"
    assert not events[1:]  # the keep-alive is a comment, not an event


# -- stage-latency histograms -----------------------------------------------

def test_stage_histograms_round_trip_through_prometheus(client, service):
    job = client.submit(experiment="E6")
    finish_by_hand(service, job["id"])
    doc = parse_prometheus(client.metrics())
    assert doc["types"]["service_job_stage_seconds"] == "histogram"
    for stage in ("submit_to_lease", "lease_to_start",
                  "start_to_complete"):
        count = doc["samples"][("service_job_stage_seconds_count",
                                (("stage", stage),))]
        assert count == 1.0, stage
    bucket = doc["samples"][("service_job_stage_seconds_bucket",
                             (("stage", "submit_to_lease"),
                              ("le", "+Inf")))]
    assert bucket == 1.0


# -- byte identity with the event plane off ---------------------------------

def run_real_job(tmp_path, name, enabled):
    from repro.obs import configure

    configure(tmp_path / name / "obs", enabled=enabled)
    service = Service(ServiceConfig(state_dir=tmp_path / name, workers=1))
    client = ServiceClient(app=service.app)
    service.start()
    try:
        job = client.submit(experiment="E3", variant="quick")
        done = client.wait(job["id"], timeout_s=120.0)
        assert done["state"] == JobState.DONE
        return client.result_bytes(job["id"])
    finally:
        service.stop()


def test_envelopes_identical_with_obs_on_and_off(tmp_path):
    with_obs = run_real_job(tmp_path, "on", enabled=True)
    reset_emitter()
    without = run_real_job(tmp_path, "off", enabled=False)
    assert with_obs == without
    assert not (tmp_path / "off" / "obs").exists()
