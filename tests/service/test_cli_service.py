"""The service-facing CLI: serve/submit/jobs, journal compact, exit codes."""

import json

import pytest

from repro.__main__ import main
from repro.service import Service, ServiceConfig, serve_in_thread

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    """One real HTTP server on an ephemeral port for the whole module."""
    state_dir = tmp_path_factory.mktemp("service-state")
    service = Service(ServiceConfig(state_dir=state_dir, port=0, workers=1))
    service.start()
    _thread, url = serve_in_thread(service)
    yield url
    service.http_server.shutdown()
    service.stop()


def test_submit_wait_and_fetch_result(server, capsys, tmp_path):
    assert main(["submit", "E2", "--url", server, "--wait",
                 "--timeout", "60"]) == 0
    out = capsys.readouterr().out
    assert "submitted job" in out and "DONE" in out

    assert main(["jobs", "ls", "--url", server]) == 0
    table = capsys.readouterr().out
    assert "E2/quick" in table and "DONE" in table
    job_id = table.splitlines()[1].split()[0]

    assert main(["jobs", "show", job_id, "--url", server]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["id"] == job_id and doc["state"] == "DONE"

    out_path = tmp_path / "result.json"
    assert main(["jobs", "result", job_id, "--url", server,
                 "--out", str(out_path)]) == 0
    envelope = json.loads(out_path.read_text())
    assert envelope["experiment"] == "E2"

    # Identical resubmission resolves from cache: zero points executed.
    assert main(["submit", "E2", "--url", server, "--wait",
                 "--timeout", "60"]) == 0
    rerun = capsys.readouterr().out
    assert "0 executed" in rerun


def test_submit_points_file(server, capsys, tmp_path):
    points = tmp_path / "points.json"
    points.write_text(json.dumps(
        {"points": [{"kind": "train", "gpus": 2, "iterations": 2}]}))
    assert main(["submit", str(points), "--url", server, "--wait",
                 "--timeout", "60"]) == 0
    assert "DONE" in capsys.readouterr().out


def test_cancel_requires_submitted_state(server, capsys):
    # High-priority submit without --wait, then racing cancel: the only
    # guaranteed-stable assertion is the exit-code contract, so cancel a
    # job the single worker has not leased yet by flooding first.
    assert main(["submit", "E2", "--url", server]) == 0
    out = capsys.readouterr().out
    job_id = out.split("submitted job ")[1].split()[0]
    code = main(["jobs", "cancel", job_id, "--url", server])
    assert code in (0, 1)  # 1 if the worker leased it first (409)
    err = capsys.readouterr()
    if code == 1:
        assert "error:" in err.err


@pytest.mark.parametrize("argv,fragment", [
    (["submit", "E99"], "neither an experiment id"),
    (["jobs", "show"], "needs a JOB_ID"),
])
def test_usage_errors_exit_2(argv, fragment, capsys):
    assert main(argv) == 2
    assert fragment in capsys.readouterr().err


def test_unknown_job_is_usage_error(server, capsys):
    assert main(["jobs", "show", "deadbeef", "--url", server]) == 2
    assert "error:" in capsys.readouterr().err


def test_unreachable_server_is_domain_failure(capsys):
    assert main(["submit", "E2", "--url",
                 "http://127.0.0.1:1", "--wait"]) == 1
    assert "cannot reach" in capsys.readouterr().err


def test_bad_points_file_exit_2(tmp_path, capsys):
    empty = tmp_path / "empty.json"
    empty.write_text("{}")
    assert main(["submit", str(empty)]) == 2
    assert "must hold a JSON list" in capsys.readouterr().err


def test_serve_rejects_bad_token_file(tmp_path, capsys):
    bad = tmp_path / "tokens.json"
    bad.write_text("[]")
    assert main(["serve", "--state-dir", str(tmp_path / "s"),
                 "--tokens", str(bad)]) == 2
    assert "bad token file" in capsys.readouterr().err


def test_journal_compact_cli(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    assert main(["journal", "compact"]) == 2  # nothing to compact yet
    assert "no journal" in capsys.readouterr().err

    from repro.runner import RunJournal

    journal = RunJournal()
    for attempt in range(3):
        journal.append("experiment_start", experiment="E2", variant="quick")
        journal.append("experiment_done", experiment="E2", variant="quick",
                       path="bench_results/e2.json")
    assert main(["journal", "compact"]) == 0
    assert "6 -> 1" in capsys.readouterr().out


def test_cache_stats_reports_hit_ratio(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    assert main(["cache", "stats"]) == 0
    assert "hit ratio" in capsys.readouterr().out
    assert main(["cache", "stats", "--json"]) == 0
    snap = json.loads(capsys.readouterr().out)
    assert snap["hit_ratio"] == 0.0
    assert {"entries", "total_bytes", "hits", "misses"} <= set(snap)
