"""The persistent job queue: priorities, leases, recovery, compaction."""

import pytest

from repro.service import JobQueue, JobState, QueueError, parse_spec
from repro.telemetry.metrics import MetricRegistry

SPEC = {"experiment": "E2", "variant": "quick"}


def make_queue(tmp_path, **kwargs):
    return JobQueue(tmp_path / "state", **kwargs)


def test_submit_and_lease_fifo(tmp_path):
    queue = make_queue(tmp_path)
    first = queue.submit(SPEC)
    second = queue.submit(SPEC)
    assert queue.depth() == 2
    assert queue.lease("w0").id == first.id
    assert queue.lease("w0").id == second.id
    assert queue.lease("w0") is None


def test_priority_descends_fifo_within_level(tmp_path):
    queue = make_queue(tmp_path)
    low = queue.submit(SPEC, priority=0)
    high_a = queue.submit(SPEC, priority=5)
    high_b = queue.submit(SPEC, priority=5)
    assert [queue.lease("w").id for _ in range(3)] == [
        high_a.id, high_b.id, low.id]


def test_full_lifecycle_and_accounting(tmp_path):
    registry = MetricRegistry()
    queue = make_queue(tmp_path, registry=registry)
    job = queue.submit(SPEC, tenant="alice")
    leased = queue.lease("w0", lease_s=30.0)
    assert leased.state == JobState.LEASED and leased.attempts == 1
    queue.mark_running(job.id)
    done = queue.complete(job.id, "results/x.json",
                          runner={"cache_hits": 3})
    assert done.state == JobState.DONE
    assert done.runner == {"cache_hits": 3}
    assert done.elapsed_s is not None
    assert queue.active_count("alice") == 0


def test_duplicate_completion_refused(tmp_path):
    queue = make_queue(tmp_path)
    job = queue.submit(SPEC)
    queue.lease("w0")
    queue.mark_running(job.id)
    queue.complete(job.id, "r.json")
    with pytest.raises(QueueError, match="duplicate"):
        queue.complete(job.id, "r2.json")
    with pytest.raises(QueueError, match="terminal"):
        queue.fail(job.id, "late error")


def test_cancel_only_submitted(tmp_path):
    queue = make_queue(tmp_path)
    job = queue.submit(SPEC)
    leased = queue.submit(SPEC)
    queue.lease("w0")  # takes `job`
    assert queue.cancel(leased.id).state == JobState.CANCELLED
    with pytest.raises(QueueError, match="only SUBMITTED"):
        queue.cancel(job.id)
    with pytest.raises(QueueError, match="unknown job"):
        queue.cancel("nope")


def test_replay_rebuilds_state(tmp_path):
    queue = make_queue(tmp_path)
    done = queue.submit(SPEC, tenant="alice", priority=2)
    failed = queue.submit(SPEC)
    pending = queue.submit(SPEC)
    queue.lease("w0")
    queue.mark_running(done.id)
    queue.complete(done.id, "r.json", runner={"cache_hits": 1})
    queue.lease("w0")
    queue.fail(failed.id, "boom")

    replayed = make_queue(tmp_path)
    assert replayed.get(done.id).state == JobState.DONE
    assert replayed.get(done.id).runner == {"cache_hits": 1}
    assert replayed.get(done.id).priority == 2
    assert replayed.get(failed.id).state == JobState.FAILED
    assert replayed.get(failed.id).error == "boom"
    assert replayed.get(pending.id).state == JobState.SUBMITTED
    assert replayed.depth() == 1


def test_recover_requeues_leases_of_dead_process(tmp_path):
    queue = make_queue(tmp_path)
    job = queue.submit(SPEC)
    queue.lease("dead:w0")
    queue.mark_running(job.id)

    restarted = make_queue(tmp_path)
    touched = restarted.recover()
    assert [j.id for j in touched] == [job.id]
    fresh = restarted.get(job.id)
    assert fresh.state == JobState.SUBMITTED
    assert fresh.recoveries == 1
    assert fresh.worker is None
    # The next leaseholder picks it up normally.
    assert restarted.lease("w1").id == job.id


def test_recover_quarantines_poison_jobs(tmp_path):
    queue = make_queue(tmp_path, max_recoveries=2)
    job = queue.submit(SPEC)
    for crash in range(3):
        queue.lease(f"dead:{crash}")
        queue = make_queue(tmp_path, max_recoveries=2)
        queue.recover()
    assert queue.get(job.id).state == JobState.QUARANTINED
    assert "crashes" in queue.get(job.id).error


def test_requeue_expired_skips_live_workers(tmp_path):
    clock = [100.0]
    queue = make_queue(tmp_path, clock=lambda: clock[0])
    expired = queue.submit(SPEC)
    live = queue.submit(SPEC)
    queue.lease("silent-worker", lease_s=10.0)   # takes `expired`
    queue.lease("live-worker", lease_s=10.0)     # takes `live`
    clock[0] = 200.0
    touched = queue.requeue_expired(skip_workers={"live-worker"})
    assert [j.id for j in touched] == [expired.id]
    assert queue.get(expired.id).state == JobState.SUBMITTED
    assert queue.get(live.id).state == JobState.LEASED


def test_mid_sweep_heartbeat_rescues_later_job(tmp_path):
    """TOCTOU regression: a heartbeat that arrives *during* the sweep —
    after its snapshot, while an earlier job's requeue is journaling —
    must rescue its job instead of losing the race to a stale snapshot.

    The journal append is monkeypatched to act as a deliberately slow
    sweep: the first reclaim's fsync window is exactly when the second
    worker's heartbeat lands (the RLock admits the reentry a request
    thread would otherwise block on until after the full sweep).
    """
    clock = [0.0]
    queue = make_queue(tmp_path, clock=lambda: clock[0])
    first = queue.submit(SPEC)
    second = queue.submit(SPEC)
    queue.lease("w-first", lease_s=10.0)
    queue.lease("w-second", lease_s=10.0)
    clock[0] = 50.0  # both lapsed; both land in the sweep's snapshot

    original_append = queue.journal.append
    state = {"fired": False}

    def slow_append(event, **fields):
        original_append(event, **fields)
        if event == "job_requeued" and not state["fired"]:
            state["fired"] = True
            queue.heartbeat(second.id, lease_s=10.0)

    queue.journal.append = slow_append
    touched = queue.requeue_expired()
    assert [j.id for j in touched] == [first.id]
    assert queue.get(first.id).state == JobState.SUBMITTED
    assert queue.get(second.id).state == JobState.LEASED
    assert queue.get(second.id).worker == "w-second"


def test_heartbeat_extends_lease_in_memory(tmp_path):
    clock = [0.0]
    queue = make_queue(tmp_path, clock=lambda: clock[0])
    job = queue.submit(SPEC)
    queue.lease("w0", lease_s=10.0)
    clock[0] = 8.0
    queue.heartbeat(job.id, lease_s=10.0)
    clock[0] = 15.0  # past the original lease, inside the refreshed one
    assert queue.requeue_expired() == []
    assert queue.get(job.id).state == JobState.LEASED


def test_compact_collapses_terminal_jobs(tmp_path):
    queue = make_queue(tmp_path)
    done = queue.submit(SPEC)
    queue.lease("w0")
    queue.mark_running(done.id)
    queue.complete(done.id, "r.json")
    pending = queue.submit(SPEC)
    before, after = queue.compact()
    assert before == 5 and after == 2  # one snapshot per job

    replayed = make_queue(tmp_path)
    assert replayed.get(done.id).state == JobState.DONE
    assert replayed.get(done.id).result_path == "r.json"
    assert replayed.get(pending.id).state == JobState.SUBMITTED
    # Compaction must not break exactly-once: completion stays refused.
    with pytest.raises(QueueError, match="terminal"):
        replayed.complete(done.id, "again.json")


def test_torn_final_line_does_not_break_replay(tmp_path):
    queue = make_queue(tmp_path)
    job = queue.submit(SPEC)
    queue.lease("w0")
    # Simulate a crash mid-append of the running event.
    text = queue.journal.path.read_text()
    queue.journal.path.write_text(text + '{"event": "job_runn')
    replayed = make_queue(tmp_path)
    assert replayed.get(job.id).state == JobState.LEASED


def test_points_spec_jobs_queue_too(tmp_path):
    queue = make_queue(tmp_path)
    spec = parse_spec({"points": [{"kind": "train", "gpus": 2,
                                   "iterations": 2}]})
    job = queue.submit(spec)
    assert queue.get(job.id).spec == spec
