"""Property tests: all allreduce algorithms agree with each other.

Seeded-random tensors pushed through every algorithm (ring, tree,
recursive doubling, Rabenseifner, hierarchical) must produce results that
(a) match ``np.sum`` / ``np.mean`` of the inputs, (b) agree *across
algorithms* within floating-point reassociation tolerance, and (c) hold
for awkward world sizes — odd, prime, power-of-two ±1 — and degenerate
payloads (zero-length, single element).
"""

import numpy as np
import pytest

from repro.mpi.collectives import ALGORITHMS

from tests.mpi.conftest import make_comm

ALL_ALGS = sorted(ALGORITHMS)

#: Odd / even / prime / pow2±1 world sizes.
WORLD_SIZES = (2, 3, 4, 5, 7, 8, 9, 11, 16)


def run_allreduce(p, payloads, algorithm, average=False):
    env, comm = make_comm(p)
    done = comm.allreduce(payloads, algorithm=algorithm, average=average)
    return env.run(until=done)


def random_payloads(p, n, seed):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal(n) for _ in range(p)]


@pytest.mark.parametrize("p", WORLD_SIZES)
@pytest.mark.parametrize("algorithm", ALL_ALGS)
def test_matches_numpy_mean(algorithm, p):
    payloads = random_payloads(p, 37, seed=1000 + p)
    expected = np.mean(payloads, axis=0)
    results = run_allreduce(p, payloads, algorithm, average=True)
    assert len(results) == p
    for r in results:
        np.testing.assert_allclose(r, expected, rtol=1e-12, atol=1e-12)


@pytest.mark.parametrize("p", WORLD_SIZES)
def test_algorithms_agree_pairwise(p):
    """Every algorithm computes the same sum (up to reassociation)."""
    payloads = random_payloads(p, 53, seed=2000 + p)
    reference = None
    for algorithm in ALL_ALGS:
        results = run_allreduce(p, [x.copy() for x in payloads], algorithm)
        if reference is None:
            reference = results[0]
        for r in results:
            np.testing.assert_allclose(r, reference, rtol=1e-11, atol=1e-11)


@pytest.mark.parametrize("algorithm", ALL_ALGS)
@pytest.mark.parametrize("p", (2, 5, 8))
def test_zero_length_payloads(algorithm, p):
    """Empty tensors reduce without error and come back empty."""
    payloads = [np.zeros(0) for _ in range(p)]
    results = run_allreduce(p, payloads, algorithm)
    assert len(results) == p
    for r in results:
        assert isinstance(r, np.ndarray) and r.size == 0


@pytest.mark.parametrize("algorithm", ALL_ALGS)
@pytest.mark.parametrize("p", (3, 4))
def test_single_element_payloads(algorithm, p):
    payloads = [np.array([float(rank + 1)]) for rank in range(p)]
    expected = sum(float(r + 1) for r in range(p))
    results = run_allreduce(p, payloads, algorithm)
    for r in results:
        np.testing.assert_allclose(r, [expected], rtol=1e-12)


@pytest.mark.parametrize("algorithm", ALL_ALGS)
def test_deterministic_across_runs(algorithm):
    """Same seed, same world → bit-identical results on repeat runs."""
    p = 5
    first = run_allreduce(p, random_payloads(p, 29, seed=7), algorithm)
    second = run_allreduce(p, random_payloads(p, 29, seed=7), algorithm)
    for a, b in zip(first, second):
        np.testing.assert_array_equal(a, b)
