"""Tests for the OSU microbenchmark drivers and the NCCL profile."""

import pytest

from repro.mpi import ALL_LIBRARIES, MPI_LIBRARIES, MVAPICH2_GDR, NCCL
from repro.mpi.osu import OSUResult, osu_allreduce, osu_bcast, osu_latency, sweep_allreduce
from repro.sim.units import KiB, MiB

from tests.mpi.conftest import make_comm


class TestOSUDrivers:
    def test_allreduce_result_fields(self):
        env, comm = make_comm(4)
        res = osu_allreduce(comm, 1024, iterations=3)
        assert res.benchmark == "osu_allreduce"
        assert res.ranks == 4 and res.iterations == 3
        assert res.latency_s > 0

    def test_bcast_cheaper_than_allreduce(self):
        res_ar = osu_allreduce(make_comm(8)[1], 1 * MiB, iterations=2)
        res_bc = osu_bcast(make_comm(8)[1], 1 * MiB, iterations=2)
        assert res_bc.latency_s < res_ar.latency_s

    def test_bcast_scales_log_in_ranks(self):
        """Binomial tree: doubling ranks adds ~one level, not 2x time."""
        t6 = osu_bcast(make_comm(6)[1], 64 * KiB, iterations=2).latency_s
        t12 = osu_bcast(make_comm(12)[1], 64 * KiB, iterations=2).latency_s
        assert t12 < 2.2 * t6

    def test_sweep_allreduce(self):
        results = sweep_allreduce(
            lambda: make_comm(4)[1], [1024, 1 * MiB], iterations=2
        )
        assert [r.nbytes for r in results] == [1024, 1 * MiB]
        assert results[0].latency_s < results[1].latency_s

    def test_size_alignment_and_validation(self):
        env, comm = make_comm(2)
        res = osu_latency(comm, 5, iterations=1)  # rounds up to 8
        assert res.nbytes == 5
        with pytest.raises(ValueError):
            osu_allreduce(make_comm(2)[1], -1)

    def test_osu_result_is_frozen(self):
        res = OSUResult("b", 1, 2, 1.0, 1)
        with pytest.raises(AttributeError):
            res.latency_s = 2.0


class TestNCCLProfile:
    def test_registries(self):
        assert "NCCL" not in MPI_LIBRARIES  # not a paper tuning target
        assert ALL_LIBRARIES["NCCL"] is NCCL
        assert set(MPI_LIBRARIES) < set(ALL_LIBRARIES)

    def test_nccl_ring_biased_selection(self):
        assert NCCL.allreduce_algorithm(1 * MiB, 24) == "ring"
        assert NCCL.allreduce_algorithm(64 * KiB, 24) == "ring"
        assert NCCL.allreduce_algorithm(1 * KiB, 24) == "recursive_doubling"

    def test_nccl_fastest_small_message_allreduce(self):
        lat = {}
        for name, lib in ALL_LIBRARIES.items():
            res = osu_allreduce(make_comm(12, library=lib)[1], 4 * KiB,
                                iterations=2)
            lat[name] = res.latency_s
        assert lat["NCCL"] < lat["MVAPICH2-GDR"] < lat["SpectrumMPI"]
