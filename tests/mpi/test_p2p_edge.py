"""Edge cases of point-to-point matching and protocol interaction."""

import numpy as np
import pytest

from repro.mpi import MVAPICH2_GDR, VirtualBuffer

from tests.mpi.conftest import make_comm


def test_two_rendezvous_sends_one_recv_then_second():
    """Posted-receive counting with multiple outstanding rendezvous sends
    (distinct tags, as the collectives discipline requires)."""
    env, comm = make_comm(2)
    big = VirtualBuffer(1 << 20)
    s1 = comm.isend(0, 1, big, tag=1)
    s2 = comm.isend(0, 1, big, tag=2)
    env.run(until=0.001)
    assert not s1.triggered and not s2.triggered

    def receiver(env):
        a = yield comm.recv(1, src=0, tag=2)  # release tag-2 first
        b = yield comm.recv(1, src=0, tag=1)
        return (a.nbytes, b.nbytes)

    r = env.process(receiver(env))
    env.run()
    assert s1.ok and s2.ok and r.value == (1 << 20, 1 << 20)


def test_eager_messages_fifo_within_same_key():
    """Multiple eager messages on one (src, tag) arrive in send order."""
    env, comm = make_comm(2)
    for i in range(4):
        comm.isend(0, 1, np.array([float(i)]), tag=9)

    def receiver(env):
        got = []
        for _ in range(4):
            v = yield comm.recv(1, src=0, tag=9)
            got.append(float(v[0]))
        return got

    r = env.process(receiver(env))
    env.run()
    assert r.value == [0.0, 1.0, 2.0, 3.0]


def test_recv_from_two_sources_interleaved():
    env, comm = make_comm(3)

    def sender(env, src, delay, val):
        yield env.timeout(delay)
        yield comm.isend(src, 2, np.array([val]), tag=0)

    env.process(sender(env, 0, 0.001, 10.0))
    env.process(sender(env, 1, 0.0005, 20.0))

    def receiver(env):
        a = yield comm.recv(2, src=0, tag=0)
        b = yield comm.recv(2, src=1, tag=0)
        return (float(a[0]), float(b[0]))

    r = env.process(receiver(env))
    env.run()
    assert r.value == (10.0, 20.0)


def test_eager_threshold_boundary():
    """A message exactly at the threshold is still eager; one byte more
    (rounded to the element) takes rendezvous."""
    env, comm = make_comm(2)
    lib = comm.library
    at = VirtualBuffer(lib.eager_threshold_bytes)
    send_at = comm.isend(0, 1, at, tag=0)
    env.run()
    assert send_at.ok  # delivered with no receiver: eager

    over = VirtualBuffer(lib.eager_threshold_bytes + 4)
    send_over = comm.isend(0, 1, over, tag=1)
    env.run()
    assert not send_over.triggered  # rendezvous: waiting for the recv

    def receiver(env):
        yield comm.recv(1, src=0, tag=1)

    env.process(receiver(env))
    env.run()
    assert send_over.ok


def test_allreduce_deterministic_repeat_on_same_env():
    """Back-to-back allreduces on one environment take identical time."""
    env, comm = make_comm(6)
    times = []
    for _ in range(3):
        start = env.now
        done = comm.allreduce(
            [VirtualBuffer(1 << 20) for _ in range(6)], algorithm="ring"
        )
        env.run(until=done)
        times.append(env.now - start)
    assert times[0] == pytest.approx(times[1]) == pytest.approx(times[2])


def test_concurrent_allreduces_share_fabric():
    """Two simultaneous allreduces contend and take longer than one."""
    env, comm = make_comm(6)
    n = 8 << 20
    start = env.now
    d1 = comm.allreduce([VirtualBuffer(n) for _ in range(6)], algorithm="ring")
    env.run(until=d1)
    solo = env.now - start

    env2, comm2 = make_comm(6)
    start = env2.now
    da = comm2.allreduce([VirtualBuffer(n) for _ in range(6)], algorithm="ring")
    db = comm2.allreduce([VirtualBuffer(n) for _ in range(6)], algorithm="ring")
    env2.run(until=env2.all_of([da, db]))
    both = env2.now - start
    assert both > 1.5 * solo
