"""Tests for the analytic negotiation cost and fabric utilization report."""

import pytest

from repro.mpi import SPECTRUM_MPI, VirtualBuffer

from tests.mpi.conftest import make_comm


class TestControlRoundSeconds:
    def test_single_rank_is_cheap(self):
        env, comm = make_comm(1)
        assert comm.control_round_seconds(64) < 1e-5

    def test_grows_with_ranks(self):
        costs = [
            make_comm(p)[1].control_round_seconds(64) for p in (2, 12, 48)
        ]
        assert costs == sorted(costs)

    def test_cached_is_cheaper(self):
        env, comm = make_comm(24)
        assert comm.control_round_seconds(64, cached=True) < (
            comm.control_round_seconds(64)
        )

    def test_validation(self):
        env, comm = make_comm(2)
        with pytest.raises(ValueError):
            comm.control_round_seconds(-1)

    def test_tracks_simulated_round_within_factor_two(self):
        """The closed form must track the fully simulated gather+bcast."""
        env, comm = make_comm(24)
        per_rank = 128
        analytic = comm.control_round_seconds(per_rank)
        start = env.now
        done = comm.gather_linear(
            [VirtualBuffer(per_rank) for _ in range(24)], root=0
        )
        env.run(until=done)
        done = comm.bcast(VirtualBuffer(per_rank), root=0)
        env.run(until=done)
        simulated = env.now - start
        assert analytic == pytest.approx(simulated, rel=1.0)
        assert analytic > simulated / 3

    def test_spectrum_costlier_than_gdr(self):
        a = make_comm(24)[1].control_round_seconds(64)
        b = make_comm(24, library=SPECTRUM_MPI)[1].control_round_seconds(64)
        assert b > a


class TestUtilizationReport:
    def test_report_after_traffic(self):
        env, comm = make_comm(12)
        done = comm.allreduce(
            [VirtualBuffer(4 << 20) for _ in range(12)], algorithm="ring"
        )
        env.run(until=done)
        report = comm.fabric.utilization_report()
        assert "ib-edr" in report and "nvlink2-gg" in report
        assert report["ib-edr"]["bytes"] > 0
        for entry in report.values():
            assert 0 <= entry["mean_utilization"] <= 1

    def test_report_idle_fabric(self):
        env, comm = make_comm(2)
        report = comm.fabric.utilization_report(elapsed_seconds=1.0)
        assert all(e["bytes"] == 0 for e in report.values())
        assert all(e["mean_utilization"] == 0.0 for e in report.values())
