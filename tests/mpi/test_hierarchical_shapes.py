"""Hierarchical allreduce on irregular rank layouts (property-based)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Fabric, build_summit
from repro.mpi import MVAPICH2_GDR, Comm
from repro.sim import Environment


def comm_with_layout(picks):
    """A communicator over an arbitrary subset of GPUs (by global index)."""
    env = Environment()
    nodes = max(p // 6 for p in picks) + 1
    topo = build_summit(env, nodes=nodes)
    gpus = topo.gpus()
    devices = [gpus[p] for p in picks]
    return env, Comm(Fabric(topo), devices, MVAPICH2_GDR)


@settings(max_examples=20, deadline=None)
@given(
    picks=st.lists(st.integers(0, 29), min_size=1, max_size=14, unique=True),
    n=st.integers(0, 30),
    seed=st.integers(0, 100),
)
def test_hierarchical_correct_on_any_layout(picks, n, seed):
    """Any subset of GPUs — uneven nodes, single-GPU nodes, gaps — must
    still produce the exact sum on every rank."""
    env, comm = comm_with_layout(picks)
    rng = np.random.default_rng(seed)
    payloads = [rng.standard_normal(n) for _ in picks]
    done = comm.allreduce(payloads, algorithm="hierarchical")
    results = env.run(until=done)
    expected = np.sum(payloads, axis=0)
    for r in results:
        np.testing.assert_allclose(r, expected, rtol=1e-10, atol=1e-12)


def test_hierarchical_single_gpu_per_node():
    """Degenerate hierarchy: every node contributes one rank."""
    picks = [0, 6, 12, 18]  # gpu 0 of four nodes
    env, comm = comm_with_layout(picks)
    payloads = [np.full(5, float(i)) for i in range(4)]
    done = comm.allreduce(payloads, algorithm="hierarchical")
    results = env.run(until=done)
    for r in results:
        np.testing.assert_allclose(r, np.full(5, 6.0))


def test_hierarchical_unbalanced_nodes():
    """Node 0 contributes 5 ranks, node 1 just one."""
    picks = [0, 1, 2, 3, 4, 6]
    env, comm = comm_with_layout(picks)
    payloads = [np.full(3, 1.0) for _ in picks]
    done = comm.allreduce(payloads, algorithm="hierarchical")
    results = env.run(until=done)
    for r in results:
        np.testing.assert_allclose(r, np.full(3, 6.0))


def test_hierarchical_inner_override():
    """Forcing the inner algorithm still sums correctly."""
    from repro.mpi.collectives.hierarchical import hierarchical_allreduce
    from repro.mpi.communicator import CollCtx
    from repro.mpi.payload import NUMPY_OPS

    picks = list(range(12))
    env, comm = comm_with_layout(picks)
    ctx = CollCtx(comm, NUMPY_OPS, comm.fresh_tag_block(), picks)
    payloads = [np.full(4, float(r)) for r in range(12)]
    procs = [
        env.process(hierarchical_allreduce(ctx, r, payloads[r], inner="ring"))
        for r in range(12)
    ]
    env.run(until=env.all_of(procs))
    for p in procs:
        np.testing.assert_allclose(p.value, np.full(4, 66.0))
