"""Tests for payload operations (numpy and virtual modes)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mpi import NUMPY_OPS, VIRTUAL_OPS, VirtualBuffer, ops_for


class TestNumpyOps:
    def test_nbytes(self):
        assert NUMPY_OPS.nbytes(np.zeros(10, dtype=np.float32)) == 40

    def test_split_concat_roundtrip(self):
        x = np.arange(10.0)
        parts = NUMPY_OPS.split(x, 3)
        assert [len(p) for p in parts] == [4, 3, 3]
        np.testing.assert_array_equal(NUMPY_OPS.concat(parts), x)

    def test_split_more_parts_than_elements(self):
        parts = NUMPY_OPS.split(np.arange(2.0), 4)
        assert [len(p) for p in parts] == [1, 1, 0, 0]

    def test_split_invalid(self):
        with pytest.raises(ValueError):
            NUMPY_OPS.split(np.arange(4.0), 0)

    def test_add_shape_mismatch(self):
        with pytest.raises(ValueError):
            NUMPY_OPS.add(np.zeros(3), np.zeros(4))

    def test_add_does_not_mutate(self):
        a, b = np.ones(3), np.full(3, 2.0)
        out = NUMPY_OPS.add(a, b)
        np.testing.assert_array_equal(a, np.ones(3))
        np.testing.assert_array_equal(out, np.full(3, 3.0))

    def test_clone_independent(self):
        a = np.ones(3)
        c = NUMPY_OPS.clone(a)
        c[0] = 99
        assert a[0] == 1

    def test_scale(self):
        np.testing.assert_array_equal(NUMPY_OPS.scale(np.full(2, 4.0), 0.25), np.ones(2))

    @given(st.integers(1, 50), st.integers(1, 12))
    def test_split_is_balanced_and_ordered(self, n, k):
        x = np.arange(float(n))
        parts = NUMPY_OPS.split(x, k)
        sizes = [len(p) for p in parts]
        assert sum(sizes) == n
        assert max(sizes) - min(sizes) <= 1
        assert sizes == sorted(sizes, reverse=True)
        np.testing.assert_array_equal(NUMPY_OPS.concat(parts), x)


class TestVirtualOps:
    def test_validation(self):
        with pytest.raises(ValueError):
            VirtualBuffer(-4)
        with pytest.raises(ValueError):
            VirtualBuffer(10, elem_size=4)  # not multiple
        with pytest.raises(ValueError):
            VirtualBuffer(4, elem_size=0)

    def test_numel(self):
        assert VirtualBuffer(40, 4).numel == 10

    def test_split_matches_numpy_split_sizes(self):
        vb = VirtualBuffer(40, 4)
        vparts = VIRTUAL_OPS.split(vb, 3)
        nparts = NUMPY_OPS.split(np.zeros(10, dtype=np.float32), 3)
        assert [p.nbytes for p in vparts] == [p.nbytes for p in nparts]

    def test_concat(self):
        parts = [VirtualBuffer(8), VirtualBuffer(12)]
        assert VIRTUAL_OPS.concat(parts).nbytes == 20

    def test_concat_empty(self):
        assert VIRTUAL_OPS.concat([]).nbytes == 0

    def test_concat_mixed_elem_size_rejected(self):
        with pytest.raises(ValueError):
            VIRTUAL_OPS.concat([VirtualBuffer(8, 4), VirtualBuffer(8, 2)])

    def test_add_size_mismatch(self):
        with pytest.raises(ValueError):
            VIRTUAL_OPS.add(VirtualBuffer(8), VirtualBuffer(12))

    def test_add_scale_clone_preserve_size(self):
        vb = VirtualBuffer(16)
        assert VIRTUAL_OPS.add(vb, VirtualBuffer(16)).nbytes == 16
        assert VIRTUAL_OPS.scale(vb, 0.5).nbytes == 16
        assert VIRTUAL_OPS.clone(vb).nbytes == 16

    @given(st.integers(0, 1000), st.integers(1, 16))
    def test_split_conserves_bytes(self, numel, k):
        vb = VirtualBuffer(numel * 4, 4)
        parts = VIRTUAL_OPS.split(vb, k)
        assert sum(p.nbytes for p in parts) == vb.nbytes
        sizes = [p.numel for p in parts]
        assert max(sizes) - min(sizes) <= 1


def test_ops_for_dispatch():
    assert ops_for(np.zeros(2)) is NUMPY_OPS
    assert ops_for(VirtualBuffer(8)) is VIRTUAL_OPS
    with pytest.raises(TypeError):
        ops_for("nope")
