"""Shared helpers for MPI-layer tests."""

import math

import pytest

from repro.cluster import Fabric, build_summit
from repro.mpi import MVAPICH2_GDR, Comm
from repro.sim import Environment


def make_comm(p, library=MVAPICH2_GDR, gpus_per_node=6):
    """A communicator over the first ``p`` GPUs of a fresh Summit build."""
    env = Environment()
    nodes = max(1, math.ceil(p / gpus_per_node))
    topo = build_summit(env, nodes=nodes)
    fabric = Fabric(topo)
    devices = topo.gpus()[:p]
    return env, Comm(fabric, devices, library)


@pytest.fixture
def comm4():
    env, comm = make_comm(4)
    return env, comm
