"""Point-to-point semantics: matching, protocols, ordering."""

import numpy as np
import pytest

from repro.cluster import Fabric, build_summit
from repro.mpi import MVAPICH2_GDR, SPECTRUM_MPI, Comm, VirtualBuffer
from repro.sim import Environment

from tests.mpi.conftest import make_comm


def test_send_recv_payload_roundtrip(comm4):
    env, comm = comm4
    data = np.arange(5.0)

    def receiver(env):
        payload = yield comm.recv(1, src=0, tag=7)
        return payload

    def sender(env):
        yield comm.isend(0, 1, data, tag=7)

    r = env.process(receiver(env))
    env.process(sender(env))
    env.run()
    np.testing.assert_array_equal(r.value, data)


def test_recv_before_send_and_after(comm4):
    env, comm = comm4
    results = []

    def receiver(env):
        early = yield comm.recv(1, src=0, tag=1)  # posted before send
        yield env.timeout(1.0)
        late = yield comm.recv(1, src=0, tag=2)  # message already arrived
        results.extend([early, late])

    def sender(env):
        yield comm.isend(0, 1, VirtualBuffer(4), tag=1)
        yield comm.isend(0, 1, VirtualBuffer(8), tag=2)

    env.process(receiver(env))
    env.process(sender(env))
    env.run()
    assert [p.nbytes for p in results] == [4, 8]


def test_tag_matching_not_fifo_across_tags(comm4):
    env, comm = comm4

    def sender(env):
        yield comm.isend(0, 1, VirtualBuffer(4), tag=10)
        yield comm.isend(0, 1, VirtualBuffer(8), tag=20)

    def receiver(env):
        second = yield comm.recv(1, src=0, tag=20)
        first = yield comm.recv(1, src=0, tag=10)
        return (first.nbytes, second.nbytes)

    env.process(sender(env))
    r = env.process(receiver(env))
    env.run()
    assert r.value == (4, 8)


def test_source_matching(comm4):
    env, comm = comm4

    def sender(env, src, size):
        yield comm.isend(src, 3, VirtualBuffer(size), tag=0)

    def receiver(env):
        from_2 = yield comm.recv(3, src=2, tag=0)
        from_1 = yield comm.recv(3, src=1, tag=0)
        return (from_1.nbytes, from_2.nbytes)

    env.process(sender(env, 1, 4))
    env.process(sender(env, 2, 8))
    r = env.process(receiver(env))
    env.run()
    assert r.value == (4, 8)


def test_self_send(comm4):
    env, comm = comm4

    def proc(env):
        yield comm.isend(2, 2, VirtualBuffer(4), tag=5)
        got = yield comm.recv(2, src=2, tag=5)
        return got.nbytes

    p = env.process(proc(env))
    env.run()
    assert p.value == 4
    assert env.now == 0.0


def test_rank_bounds_checked(comm4):
    env, comm = comm4
    with pytest.raises(ValueError):
        comm.isend(0, 99, VirtualBuffer(4), tag=0)
    with pytest.raises(ValueError):
        comm.recv(-1, src=0, tag=0)


def test_eager_send_completes_without_receiver():
    """Eager (small) messages deliver even when no recv is posted."""
    env, comm = make_comm(2)
    small = VirtualBuffer(4)  # far below eager threshold
    send = comm.isend(0, 1, small, tag=0)
    env.run()
    assert send.processed and send.ok


def test_rendezvous_send_blocks_until_recv_posted():
    """Large messages wait for the matching receive (rendezvous)."""
    env, comm = make_comm(2)
    big = VirtualBuffer(10 * (1 << 20))  # 10 MiB >> eager threshold
    send = comm.isend(0, 1, big, tag=0)
    env.run(until=1.0)
    assert not send.triggered  # still waiting on the receiver

    def receiver(env):
        payload = yield comm.recv(1, src=0, tag=0)
        return payload.nbytes

    r = env.process(receiver(env))
    env.run()
    assert send.processed and r.value == big.nbytes


def test_rendezvous_adds_rtt_latency():
    """With recv pre-posted, rendezvous still costs the RTS/CTS RTT."""
    env, comm = make_comm(2, library=MVAPICH2_GDR)
    nbytes = 10 * (1 << 20)
    src, dst = comm.devices[0], comm.devices[1]
    lib = comm.library
    same = comm.fabric.topology.same_node(src, dst)
    base = comm.fabric.transfer_seconds(
        src, dst, nbytes,
        extra_latency=lib.sw_latency(same),
        bandwidth_derate=lib.bw_derate(same),
    )

    def receiver(env):
        yield comm.recv(1, src=0, tag=0)

    env.process(receiver(env))
    comm.isend(0, 1, VirtualBuffer(nbytes), tag=0)
    env.run()
    assert env.now == pytest.approx(base + lib.rendezvous_rtt_s)


def test_spectrum_slower_than_mvapich_inter_node():
    """Host staging (Spectrum) must cost more than GDR for GPU buffers."""
    times = {}
    for lib in (SPECTRUM_MPI, MVAPICH2_GDR):
        env, comm = make_comm(12, library=lib)  # 2 nodes

        def receiver(env, comm=comm):
            yield comm.recv(6, src=0, tag=0)  # rank 6 = first GPU of node 1

        env.process(receiver(env))
        comm.isend(0, 6, VirtualBuffer(4 * (1 << 20)), tag=0)
        env.run()
        times[lib.name] = env.now
    assert times["SpectrumMPI"] > times["MVAPICH2-GDR"]


def test_messages_sent_counter(comm4):
    env, comm = comm4
    comm.isend(0, 1, VirtualBuffer(4), tag=0)
    comm.isend(1, 2, VirtualBuffer(4), tag=0)
    env.run()
    assert comm.messages_sent == 2


def test_duplicate_devices_rejected():
    env = Environment()
    topo = build_summit(env, nodes=1)
    fabric = Fabric(topo)
    g = topo.gpus()[0]
    with pytest.raises(ValueError):
        Comm(fabric, [g, g], MVAPICH2_GDR)


def test_empty_comm_rejected():
    env = Environment()
    fabric = Fabric(build_summit(env, nodes=1))
    with pytest.raises(ValueError):
        Comm(fabric, [], MVAPICH2_GDR)
