"""Correctness of every collective algorithm, data and timing modes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi import VirtualBuffer
from repro.mpi.collectives import ALGORITHMS, get_algorithm
from repro.mpi.collectives.recursive import largest_pow2_leq

from tests.mpi.conftest import make_comm

ALL_ALGS = sorted(ALGORITHMS)


def run_allreduce(p, payloads, algorithm, average=False):
    env, comm = make_comm(p)
    done = comm.allreduce(payloads, algorithm=algorithm, average=average)
    results = env.run(until=done)
    return results, env.now


def random_payloads(p, n, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal(n) for _ in range(p)]


@pytest.mark.parametrize("algorithm", ALL_ALGS)
@pytest.mark.parametrize("p", [1, 2, 3, 4, 5, 6, 7, 8, 12, 13])
def test_allreduce_equals_sum(algorithm, p):
    n = 23
    payloads = random_payloads(p, n, seed=p)
    expected = np.sum(payloads, axis=0)
    results, elapsed = run_allreduce(p, payloads, algorithm)
    assert len(results) == p
    for r in results:
        np.testing.assert_allclose(r, expected, rtol=1e-12)
    if p > 1:
        assert elapsed > 0


@pytest.mark.parametrize("algorithm", ALL_ALGS)
def test_allreduce_bitwise_identical_across_ranks(algorithm):
    """All our algorithms produce the same bits on every rank."""
    p = 7
    payloads = random_payloads(p, 31, seed=99)
    results, _ = run_allreduce(p, payloads, algorithm)
    for r in results[1:]:
        np.testing.assert_array_equal(r, results[0])


@pytest.mark.parametrize("algorithm", ALL_ALGS)
def test_allreduce_average(algorithm):
    p = 4
    payloads = [np.full(5, float(i)) for i in range(p)]
    results, _ = run_allreduce(p, payloads, algorithm, average=True)
    for r in results:
        np.testing.assert_allclose(r, np.full(5, 1.5))


@pytest.mark.parametrize("algorithm", ALL_ALGS)
@pytest.mark.parametrize("p", [1, 2, 4, 6, 9])
def test_allreduce_virtual_mode_preserves_size(algorithm, p):
    payloads = [VirtualBuffer(4096) for _ in range(p)]
    results, elapsed = run_allreduce(p, payloads, algorithm)
    assert all(r.nbytes == 4096 for r in results)


@pytest.mark.parametrize("algorithm", ALL_ALGS)
def test_allreduce_empty_payload(algorithm):
    p = 4
    payloads = [np.empty(0) for _ in range(p)]
    results, _ = run_allreduce(p, payloads, algorithm)
    assert all(len(r) == 0 for r in results)


@pytest.mark.parametrize("algorithm", ALL_ALGS)
def test_allreduce_size_smaller_than_ranks(algorithm):
    """Fewer elements than ranks: split yields empty segments."""
    p = 6
    payloads = [np.full(2, float(i)) for i in range(p)]
    results, _ = run_allreduce(p, payloads, algorithm)
    for r in results:
        np.testing.assert_allclose(r, np.full(2, 15.0))


@settings(max_examples=25, deadline=None)
@given(
    algorithm=st.sampled_from(ALL_ALGS),
    p=st.integers(1, 10),
    n=st.integers(0, 40),
    seed=st.integers(0, 1000),
)
def test_allreduce_property(algorithm, p, n, seed):
    """Property: any algorithm, any size, any data -> elementwise sum."""
    payloads = random_payloads(p, n, seed=seed)
    expected = np.sum(payloads, axis=0) if p else np.zeros(n)
    results, _ = run_allreduce(p, payloads, algorithm)
    for r in results:
        np.testing.assert_allclose(r, expected, rtol=1e-10, atol=1e-12)


def test_get_algorithm_unknown():
    with pytest.raises(KeyError, match="unknown collective"):
        get_algorithm("nope")


def test_largest_pow2_leq():
    assert [largest_pow2_leq(i) for i in (1, 2, 3, 4, 7, 8, 9, 132)] == [
        1, 2, 2, 4, 4, 8, 8, 128,
    ]
    with pytest.raises(ValueError):
        largest_pow2_leq(0)


def test_payload_count_must_match_size():
    env, comm = make_comm(4)
    with pytest.raises(ValueError):
        comm.allreduce([np.zeros(3)] * 3)


def test_default_algorithm_selection_by_size():
    """Without an explicit algorithm the library table picks by size."""
    env, comm = make_comm(4)
    # Small message -> recursive doubling; just verify it completes and sums.
    payloads = [np.full(4, float(i), dtype=np.float32) for i in range(4)]
    done = comm.allreduce(payloads)
    results = env.run(until=done)
    np.testing.assert_allclose(results[0], np.full(4, 6.0))


def test_gather_linear():
    env, comm = make_comm(5)
    payloads = [np.full(3, float(r)) for r in range(5)]
    done = comm.gather_linear(payloads, root=0)
    results = env.run(until=done)
    for r, res in enumerate(results):
        np.testing.assert_array_equal(res, np.full(3, float(r)))


def test_bcast_delivers_to_all():
    env, comm = make_comm(6)
    data = np.arange(4.0)
    done = comm.bcast(data, root=2)
    results = env.run(until=done)
    assert len(results) == 6
    for r in results:
        np.testing.assert_array_equal(r, data)


def test_bcast_single_rank():
    env, comm = make_comm(1)
    done = comm.bcast(np.arange(3.0), root=0)
    results = env.run(until=done)
    np.testing.assert_array_equal(results[0], np.arange(3.0))
