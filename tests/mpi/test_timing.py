"""Timing *shape* of the simulated MPI: the qualitative facts the paper's
tuning exploits must hold in the model."""

import pytest

from repro.mpi import MVAPICH2_GDR, SPECTRUM_MPI, VirtualBuffer
from repro.mpi.costmodel import allreduce_time, alpha_beta_for
from repro.mpi.osu import osu_allreduce, osu_latency
from repro.sim.units import KiB, MiB

from tests.mpi.conftest import make_comm


def allreduce_elapsed(p, nbytes, algorithm, library=MVAPICH2_GDR):
    env, comm = make_comm(p, library=library)
    done = comm.allreduce(
        [VirtualBuffer(nbytes) for _ in range(p)], algorithm=algorithm
    )
    env.run(until=done)
    return env.now


def test_recursive_doubling_beats_ring_small_messages():
    """Latency-bound regime: log(p) rounds beat 2(p-1) rounds."""
    t_rd = allreduce_elapsed(12, 4 * KiB, "recursive_doubling")
    t_ring = allreduce_elapsed(12, 4 * KiB, "ring")
    assert t_rd < t_ring


def test_ring_beats_recursive_doubling_large_messages():
    """Bandwidth-bound regime: 2n/p traffic beats n log(p)."""
    t_rd = allreduce_elapsed(12, 64 * MiB, "recursive_doubling")
    t_ring = allreduce_elapsed(12, 64 * MiB, "ring")
    assert t_ring < t_rd


def test_rabenseifner_between_ring_and_rd_latency():
    """Rabenseifner has ring's traffic with log latency: best of both for
    mid sizes, and never dramatically worse than either."""
    n = 256 * KiB
    t_rab = allreduce_elapsed(12, n, "rabenseifner")
    t_ring = allreduce_elapsed(12, n, "ring")
    t_rd = allreduce_elapsed(12, n, "recursive_doubling")
    assert t_rab < t_ring
    assert t_rab < 1.5 * t_rd


def test_hierarchical_beats_flat_ring_latency_regime():
    """At scale with moderate messages (the regime fused Horovod buffers
    live in), cutting inter-node participants 6x wins — the paper's
    HIERARCHICAL_ALLREDUCE effect."""
    for p, n in [(24, 1 * MiB), (72, 4 * MiB)]:
        t_flat = allreduce_elapsed(p, n, "ring")
        t_hier = allreduce_elapsed(p, n, "hierarchical")
        assert t_hier < t_flat, (p, n)


def test_flat_ring_beats_hierarchical_bandwidth_regime():
    """For huge buffers a well-mapped flat ring is bandwidth-optimal and
    hierarchical's full-size intra-node stages cost extra — the crossover
    the E9 ablation bench documents."""
    t_flat = allreduce_elapsed(24, 32 * MiB, "ring")
    t_hier = allreduce_elapsed(24, 32 * MiB, "hierarchical")
    assert t_flat < t_hier


def test_hierarchical_single_node_close_to_flat():
    """Within one node hierarchical degenerates to the flat algorithm."""
    t_hier = allreduce_elapsed(6, 8 * MiB, "hierarchical")
    t_flat = allreduce_elapsed(6, 8 * MiB, "ring")
    assert t_hier == pytest.approx(t_flat, rel=0.05)


def test_mvapich_gdr_faster_than_spectrum_all_sizes():
    """The library gap that motivates the paper, across the size range."""
    for nbytes in (4 * KiB, 256 * KiB, 16 * MiB):
        t_spec = allreduce_elapsed(12, nbytes, "ring", library=SPECTRUM_MPI)
        t_gdr = allreduce_elapsed(12, nbytes, "ring", library=MVAPICH2_GDR)
        assert t_gdr < t_spec, f"size {nbytes}"


def test_allreduce_time_scales_sublinearly_with_ranks_ring():
    """Ring bandwidth term is ~constant in p; time grows via latency only."""
    n = 64 * MiB
    t12 = allreduce_elapsed(12, n, "ring")
    t24 = allreduce_elapsed(24, n, "ring")
    assert t24 < 1.6 * t12


def test_osu_latency_small_message_scale():
    """Inter-node small-message GPU latency: GDR must be in the low single-
    digit µs, Spectrum in the tens of µs (published OSU shape)."""
    env, comm = make_comm(12, library=MVAPICH2_GDR)
    gdr = osu_latency(comm, 8, ranks=(0, 6))
    env, comm = make_comm(12, library=SPECTRUM_MPI)
    spec = osu_latency(comm, 8, ranks=(0, 6))
    assert 2 < gdr.latency_us < 12
    assert 15 < spec.latency_us < 50
    assert spec.latency_s > 2.5 * gdr.latency_s


def test_osu_allreduce_monotone_in_size():
    env, comm = make_comm(6)
    sizes = [1 * KiB, 32 * KiB, 1 * MiB, 16 * MiB]
    lat = [osu_allreduce(make_comm(6)[1], s, iterations=2).latency_s for s in sizes]
    assert lat == sorted(lat)


def test_osu_result_bandwidth_property():
    env, comm = make_comm(2)
    res = osu_latency(comm, 1 * MiB)
    assert res.bandwidth_Bps > 0
    assert res.latency_us == pytest.approx(res.latency_s * 1e6)


def test_osu_latency_needs_two_ranks():
    env, comm = make_comm(1)
    with pytest.raises(ValueError):
        osu_latency(comm, 8)


class TestAnalyticCrossValidation:
    """DES results must track the α–β formulas on uniform topologies."""

    @pytest.mark.parametrize("algorithm", ["ring", "recursive_doubling", "rabenseifner"])
    def test_intra_node_matches_model(self, algorithm):
        """Single node (uniform NVLink all-to-all, p=4 power of two)."""
        p, n = 4, 8 * MiB
        env, comm = make_comm(p)
        ab = alpha_beta_for(comm, inter_node=False)
        predicted = allreduce_time(algorithm, p, n, ab)
        done = comm.allreduce(
            [VirtualBuffer(n) for _ in range(p)], algorithm=algorithm
        )
        env.run(until=done)
        # Within 35%: the DES adds eager/rendezvous detail and real
        # balanced-split sizes the formula ignores.
        assert env.now == pytest.approx(predicted, rel=0.35)

    def test_model_rejects_unknown(self):
        with pytest.raises(KeyError):
            allreduce_time("nope", 4, 100, AlphaBetaStub())

    def test_model_p1_free(self):
        ab = alpha_beta_for(make_comm(2)[1], inter_node=False)
        assert allreduce_time("ring", 1, 100, ab) == 0.0

    def test_model_invalid_p(self):
        ab = alpha_beta_for(make_comm(2)[1], inter_node=False)
        with pytest.raises(ValueError):
            allreduce_time("ring", 0, 100, ab)

    def test_alpha_beta_requires_matching_pair(self):
        env, comm = make_comm(2)  # both ranks on node 0
        with pytest.raises(ValueError):
            alpha_beta_for(comm, inter_node=True)


class AlphaBetaStub:
    alpha = 1e-6
    beta = 1e-9

    def message(self, nbytes):
        return self.alpha + nbytes * self.beta
