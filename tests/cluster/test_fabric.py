"""Tests for the fabric transfer model: timing, contention, accounting."""

import pytest

from repro.cluster import Device, Fabric, build_summit
from repro.sim import Environment
from repro.sim.units import MiB, gbyte_per_s, microseconds


def make_fabric(nodes=2):
    env = Environment()
    topo = build_summit(env, nodes=nodes)
    return env, Fabric(topo)


def test_transfer_seconds_matches_alpha_beta():
    env, fabric = make_fabric()
    src, dst = Device.gpu(0, 0), Device.gpu(0, 1)
    n = 10 * MiB
    expected = microseconds(1.9) + n / gbyte_per_s(47.0)
    assert fabric.transfer_seconds(src, dst, n) == pytest.approx(expected)


def test_transfer_process_advances_clock():
    env, fabric = make_fabric()
    src, dst = Device.gpu(0, 0), Device.gpu(0, 1)
    n = 10 * MiB
    t = fabric.transfer(src, dst, n)
    env.run(until=t)
    assert env.now == pytest.approx(fabric.transfer_seconds(src, dst, n))


def test_self_transfer_is_free():
    env, fabric = make_fabric()
    g = Device.gpu(0, 0)
    t = fabric.transfer(g, g, 100 * MiB)
    env.run(until=t)
    assert env.now == 0.0


def test_zero_byte_transfer_pays_latency_only():
    env, fabric = make_fabric()
    src, dst = Device.gpu(0, 0), Device.gpu(0, 1)
    t = fabric.transfer(src, dst, 0)
    env.run(until=t)
    assert env.now == pytest.approx(microseconds(1.9))


def test_negative_size_rejected():
    env, fabric = make_fabric()
    with pytest.raises(ValueError):
        fabric.transfer(Device.gpu(0, 0), Device.gpu(0, 1), -1)


def test_bad_derate_rejected():
    env, fabric = make_fabric()
    with pytest.raises(ValueError):
        fabric.transfer(Device.gpu(0, 0), Device.gpu(0, 1), 1, bandwidth_derate=0.0)
    with pytest.raises(ValueError):
        fabric.transfer(Device.gpu(0, 0), Device.gpu(0, 1), 1, bandwidth_derate=1.5)


def test_derate_slows_transfer():
    env, fabric = make_fabric()
    src, dst = Device.gpu(0, 0), Device.gpu(0, 1)
    n = 100 * MiB
    full = fabric.transfer_seconds(src, dst, n)
    derated = fabric.transfer_seconds(src, dst, n, bandwidth_derate=0.5)
    # Latency unchanged, bandwidth term doubled.
    assert derated - microseconds(1.9) == pytest.approx(2 * (full - microseconds(1.9)))


def test_extra_latency_added():
    env, fabric = make_fabric()
    src, dst = Device.gpu(0, 0), Device.gpu(0, 1)
    base = fabric.transfer_seconds(src, dst, 0)
    assert fabric.transfer_seconds(src, dst, 0, extra_latency=5e-6) == pytest.approx(
        base + 5e-6
    )


def test_shared_link_serializes_transfers():
    """Two messages over the same directed link take 2x one message."""
    env, fabric = make_fabric()
    src, dst = Device.gpu(0, 0), Device.gpu(0, 1)
    n = 50 * MiB
    one = fabric.transfer_seconds(src, dst, n)
    t1 = fabric.transfer(src, dst, n)
    t2 = fabric.transfer(src, dst, n)
    env.run()
    assert env.now == pytest.approx(2 * one)
    assert t1.value == pytest.approx(one)
    assert t2.value == pytest.approx(2 * one)  # includes queueing


def test_opposite_directions_do_not_contend():
    """Full duplex: A->B and B->A proceed concurrently."""
    env, fabric = make_fabric()
    a, b = Device.gpu(0, 0), Device.gpu(0, 1)
    n = 50 * MiB
    one = fabric.transfer_seconds(a, b, n)
    fabric.transfer(a, b, n)
    fabric.transfer(b, a, n)
    env.run()
    assert env.now == pytest.approx(one)


def test_disjoint_routes_do_not_contend():
    env, fabric = make_fabric()
    n = 50 * MiB
    one = fabric.transfer_seconds(Device.gpu(0, 0), Device.gpu(0, 1), n)
    fabric.transfer(Device.gpu(0, 0), Device.gpu(0, 1), n)
    fabric.transfer(Device.gpu(0, 2), Device.gpu(0, 1), n)
    env.run()
    assert env.now == pytest.approx(one)


def test_nic_injection_is_shared_bottleneck():
    """Two inter-node messages from GPUs on the same socket share one rail."""
    env, fabric = make_fabric(nodes=2)
    n = 50 * MiB
    one = fabric.transfer_seconds(Device.gpu(0, 0), Device.gpu(1, 0), n)
    fabric.transfer(Device.gpu(0, 0), Device.gpu(1, 0), n)
    fabric.transfer(Device.gpu(0, 1), Device.gpu(1, 1), n)
    env.run()
    # Both share cpu:0:0 -> nic:0:0 -> leaf; finish strictly after one.
    assert env.now > 1.8 * one


def test_opposite_rails_do_not_contend():
    """GPUs on different sockets use different rails: no sharing."""
    env, fabric = make_fabric(nodes=2)
    n = 50 * MiB
    one = fabric.transfer_seconds(Device.gpu(0, 0), Device.gpu(1, 0), n)
    fabric.transfer(Device.gpu(0, 0), Device.gpu(1, 0), n)
    fabric.transfer(Device.gpu(0, 3), Device.gpu(1, 3), n)
    env.run()
    assert env.now == pytest.approx(one)


def test_many_concurrent_ring_neighbors_no_deadlock():
    """A full ring of simultaneous neighbor sends completes (deadlock-free)."""
    env, fabric = make_fabric(nodes=4)
    gpus = fabric.topology.gpus()
    p = len(gpus)
    events = [
        fabric.transfer(gpus[i], gpus[(i + 1) % p], 1 * MiB) for i in range(p)
    ]
    env.run()
    assert all(e.processed and e.ok for e in events)
    assert fabric.stats.transfers == p


def test_stats_accounting():
    env, fabric = make_fabric()
    n = 10 * MiB
    fabric.transfer(Device.gpu(0, 0), Device.gpu(0, 1), n)
    env.run()
    assert fabric.stats.transfers == 1
    assert fabric.stats.bytes_moved == n
    assert fabric.stats.bytes_by_link_type == {"nvlink2-gg": n}
    link = fabric.topology.link(Device.gpu(0, 0), Device.gpu(0, 1))
    assert link.bytes_carried == n
    assert link.utilization(env.now) == pytest.approx(1.0)


def test_gpu_spec_roofline():
    from repro.cluster import V100

    # Compute-bound kernel: time = flops / sustained + launch.
    flops = 1e12
    t = V100.kernel_seconds(flops, bytes_moved=0)
    assert t == pytest.approx(V100.kernel_launch_s + flops / V100.sustained_fp32_flops)
    # Memory-bound kernel.
    nbytes = 1e9
    t = V100.kernel_seconds(0, bytes_moved=nbytes)
    assert t == pytest.approx(V100.kernel_launch_s + nbytes / V100.sustained_mem_Bps)


def test_gpu_spec_validation():
    from repro.cluster import GPUSpec

    with pytest.raises(ValueError):
        GPUSpec("bad", -1, 1, 1, 1, 1, 0.5, 0.5)
    with pytest.raises(ValueError):
        GPUSpec("bad", 1, 1, 1, 1, 1, 1.5, 0.5)
