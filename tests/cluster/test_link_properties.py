"""Property tests for link arithmetic: sharing conservation, degrade/restore.

Hypothesis-driven invariants over the α–β link model:

* **Serialization conserves link-seconds** — N contended transfers over
  one directed route finish at exactly the sum of their unloaded
  durations, and every route link's ``busy_seconds``/``bytes_carried``
  account for each transfer once (no time or bytes created or lost by
  queueing).  Holds identically under both transfer paths.
* **Degrade/restore round-trips** — any sequence of ``set_factor`` calls
  composes from ``base_spec`` (never accretes), and ``set_factor(1.0)``
  restores the pristine spec object exactly.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import Device, Fabric, build_summit
from repro.cluster.links import Link, LinkSpec
from repro.sim import Environment, fast_path
from repro.sim.units import MiB, microseconds

SIZES = st.lists(st.integers(min_value=0, max_value=64 * MiB),
                 min_size=1, max_size=6)
FACTORS = st.lists(st.floats(min_value=0.01, max_value=1.0,
                             allow_nan=False, allow_infinity=False),
                   min_size=1, max_size=5)

prop = settings(max_examples=25, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


def make_fabric(nodes=1):
    env = Environment()
    return env, Fabric(build_summit(env, nodes=nodes))


@prop
@given(sizes=SIZES, fast=st.booleans())
def test_serialized_transfers_conserve_link_seconds(sizes, fast):
    """Makespan of N contended transfers == Σ unloaded durations."""
    with fast_path(fast):
        env, fabric = make_fabric()
        src, dst = Device.gpu(0, 0), Device.gpu(0, 1)
        durations = [fabric.transfer_seconds(src, dst, n) for n in sizes]
        events = [fabric.transfer(src, dst, n) for n in sizes]
        env.run()
    assert env.now == pytest.approx(sum(durations))
    # FIFO queueing: transfer k completes at the k-th partial sum.
    done = 0.0
    for event, duration in zip(events, durations):
        done += duration
        assert event.value == pytest.approx(done)
    link = fabric.topology.link(src, dst)
    assert link.busy_seconds == pytest.approx(sum(durations))
    assert link.bytes_carried == sum(sizes)
    assert fabric.stats.transfers == len(sizes)
    assert fabric.stats.bytes_moved == sum(sizes)


@prop
@given(sizes=SIZES, fast=st.booleans())
def test_route_holds_every_link_for_the_same_duration(sizes, fast):
    """Busy-seconds conservation across a multi-link route.

    A wormhole transfer occupies all route links for its whole duration,
    so Σ_links busy_seconds == Σ_transfers duration × route_length.
    """
    with fast_path(fast):
        env, fabric = make_fabric(nodes=2)
        src, dst = Device.gpu(0, 0), Device.gpu(1, 0)
        route = fabric.topology.route(src, dst)
        assert len(route) > 1
        durations = [fabric.transfer_seconds(src, dst, n) for n in sizes]
        for n in sizes:
            fabric.transfer(src, dst, n)
        env.run()
    for link in route:
        assert link.busy_seconds == pytest.approx(sum(durations))
        assert link.bytes_carried == sum(sizes)
    total_busy = sum(l.busy_seconds for l in fabric.topology.links())
    assert total_busy == pytest.approx(sum(durations) * len(route))


@prop
@given(n=st.integers(min_value=0, max_value=256 * MiB),
       derate=st.floats(min_value=0.1, max_value=1.0, allow_nan=False),
       extra=st.floats(min_value=0.0, max_value=1e-4, allow_nan=False))
def test_transfer_seconds_is_the_alpha_beta_closed_form(n, derate, extra):
    env, fabric = make_fabric(nodes=2)
    src, dst = Device.gpu(0, 0), Device.gpu(1, 0)
    route = fabric.topology.route(src, dst)
    expected = (sum(l.latency_s for l in route) + extra
                + n / (min(l.bandwidth_Bps for l in route) * derate))
    got = fabric.transfer_seconds(src, dst, n, extra_latency=extra,
                                  bandwidth_derate=derate)
    assert got == pytest.approx(expected)
    # Monotone in size: one more byte never arrives earlier.
    assert fabric.transfer_seconds(src, dst, n + 1, extra_latency=extra,
                                   bandwidth_derate=derate) >= got


@prop
@given(factors=FACTORS)
def test_degrade_compose_from_base_then_restore_roundtrip(factors):
    env = Environment()
    spec = LinkSpec("nvlink2", microseconds(1.9), 47e9)
    link = Link(env, spec, "a->b")
    for factor in factors:
        link.set_factor(factor)
        # Each degradation recomputes from the pristine datasheet spec —
        # repeated applications never compound.
        assert link.bandwidth_Bps == spec.bandwidth_Bps * factor
        assert link.latency_s == spec.latency_s
        assert link.degrade_factor == factor
        if factor != 1.0:
            assert link.spec.name == "nvlink2-degraded"
    link.set_factor(1.0)
    assert link.spec is spec
    assert link.degrade_factor == 1.0
    assert link.bandwidth_Bps == spec.bandwidth_Bps


@prop
@given(factor=st.floats(min_value=0.01, max_value=0.99, allow_nan=False),
       n=st.integers(min_value=1, max_value=64 * MiB))
def test_degraded_transfer_time_scales_exactly(factor, n):
    """Degrading the bottleneck scales only the bandwidth term."""
    env, fabric = make_fabric()
    src, dst = Device.gpu(0, 0), Device.gpu(0, 1)
    (link,) = fabric.topology.route(src, dst)
    healthy = fabric.transfer_seconds(src, dst, n)
    link.set_factor(factor)
    degraded = fabric.transfer_seconds(src, dst, n)
    assert (degraded - link.latency_s) == pytest.approx(
        (healthy - link.latency_s) / factor
    )
    link.set_factor(1.0)
    assert fabric.transfer_seconds(src, dst, n) == healthy


@prop
@given(factor=st.floats(min_value=0, max_value=2.0, allow_nan=False))
def test_set_factor_rejects_out_of_range(factor):
    env = Environment()
    link = Link(env, LinkSpec("x", 0.0, 1.0), "a->b")
    if 0 < factor <= 1:
        link.set_factor(factor)
    else:
        with pytest.raises(ValueError):
            link.set_factor(factor)
