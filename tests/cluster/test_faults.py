"""Tests for fault injection (link degradation)."""

import pytest

from repro.cluster import Device, Fabric, build_summit
from repro.sim import Environment


def make():
    env = Environment()
    topo = build_summit(env, nodes=2)
    return env, topo, Fabric(topo)


def test_degrade_slows_transfers_through_link():
    env, topo, fabric = make()
    src, dst = Device.gpu(0, 0), Device.gpu(1, 0)
    healthy = fabric.transfer_seconds(src, dst, 10 << 20)
    topo.degrade_link(Device.nic(0, 0), Device.switch(1), 0.1)
    degraded = fabric.transfer_seconds(src, dst, 10 << 20)
    assert degraded > 5 * healthy


def test_degrade_leaves_other_routes_untouched():
    env, topo, fabric = make()
    other = fabric.transfer_seconds(Device.gpu(0, 3), Device.gpu(1, 3), 1 << 20)
    topo.degrade_link(Device.nic(0, 0), Device.switch(1), 0.1)
    # Socket-1 GPUs use rail 1; unaffected.
    assert fabric.transfer_seconds(
        Device.gpu(0, 3), Device.gpu(1, 3), 1 << 20
    ) == pytest.approx(other)


def test_degrade_duplex_affects_both_directions():
    env, topo, fabric = make()
    topo.degrade_link(Device.nic(0, 0), Device.switch(1), 0.5)
    fwd = topo.link(Device.nic(0, 0), Device.switch(1))
    rev = topo.link(Device.switch(1), Device.nic(0, 0))
    assert "degraded" in fwd.spec.name and "degraded" in rev.spec.name


def test_degrade_simplex_option():
    env, topo, fabric = make()
    topo.degrade_link(Device.nic(0, 0), Device.switch(1), 0.5, duplex=False)
    rev = topo.link(Device.switch(1), Device.nic(0, 0))
    assert "degraded" not in rev.spec.name


def test_degrade_validation():
    env, topo, fabric = make()
    with pytest.raises(ValueError):
        topo.degrade_link(Device.nic(0, 0), Device.switch(1), 0.0)
    with pytest.raises(ValueError):
        topo.degrade_link(Device.nic(0, 0), Device.switch(1), 1.5)


def test_degrade_invalidates_route_cache():
    env, topo, fabric = make()
    src, dst = Device.gpu(0, 0), Device.gpu(1, 0)
    before = topo.route_bandwidth(src, dst)
    topo.degrade_link(Device.nic(0, 0), Device.switch(1), 0.5)
    after = topo.route_bandwidth(src, dst)
    assert after == pytest.approx(before * 0.5)


NIC, SW = Device.nic(0, 0), Device.switch(1)


def test_repeated_degrade_composes_from_base_spec():
    """0.5 then 0.5 again = 0.25× nominal, with no name accretion."""
    env, topo, fabric = make()
    nominal = topo.link(NIC, SW).spec.bandwidth_Bps
    topo.degrade_link(NIC, SW, 0.5)
    topo.degrade_link(NIC, SW, 0.5)
    link = topo.link(NIC, SW)
    assert link.spec.bandwidth_Bps == pytest.approx(nominal * 0.25)
    assert link.spec.name.count("degraded") == 1
    assert topo.link_factor(NIC, SW) == pytest.approx(0.25)


def test_restore_link_is_exact_inverse():
    env, topo, fabric = make()
    src, dst = Device.gpu(0, 0), Device.gpu(1, 0)
    healthy = fabric.transfer_seconds(src, dst, 10 << 20)
    original_spec = topo.link(NIC, SW).spec
    topo.degrade_link(NIC, SW, 0.1)
    topo.degrade_link(NIC, SW, 0.3)
    topo.restore_link(NIC, SW)
    link = topo.link(NIC, SW)
    assert link.spec == original_spec
    assert topo.link_factor(NIC, SW) == 1.0
    assert fabric.transfer_seconds(src, dst, 10 << 20) == pytest.approx(healthy)


def test_restore_refreshes_route_cache():
    env, topo, fabric = make()
    src, dst = Device.gpu(0, 0), Device.gpu(1, 0)
    before = topo.route_bandwidth(src, dst)
    topo.degrade_link(NIC, SW, 0.5)
    assert topo.route_bandwidth(src, dst) == pytest.approx(before * 0.5)
    topo.restore_link(NIC, SW)
    assert topo.route_bandwidth(src, dst) == pytest.approx(before)


def test_set_link_factor_is_absolute_not_compounding():
    env, topo, fabric = make()
    nominal = topo.link(NIC, SW).spec.bandwidth_Bps
    topo.set_link_factor(NIC, SW, 0.5)
    topo.set_link_factor(NIC, SW, 0.5)
    assert topo.link(NIC, SW).spec.bandwidth_Bps == pytest.approx(nominal * 0.5)


def test_restore_also_brings_link_back_up():
    env, topo, fabric = make()
    topo.set_link_up(NIC, SW, False)
    assert not topo.link(NIC, SW).up
    assert not topo.link(SW, NIC).up
    topo.restore_link(NIC, SW)
    assert topo.link(NIC, SW).up
    assert topo.link(SW, NIC).up


def test_set_link_up_simplex():
    env, topo, fabric = make()
    topo.set_link_up(NIC, SW, False, duplex=False)
    assert not topo.link(NIC, SW).up
    assert topo.link(SW, NIC).up
