"""Tests for fault injection (link degradation)."""

import pytest

from repro.cluster import Device, Fabric, build_summit
from repro.sim import Environment


def make():
    env = Environment()
    topo = build_summit(env, nodes=2)
    return env, topo, Fabric(topo)


def test_degrade_slows_transfers_through_link():
    env, topo, fabric = make()
    src, dst = Device.gpu(0, 0), Device.gpu(1, 0)
    healthy = fabric.transfer_seconds(src, dst, 10 << 20)
    topo.degrade_link(Device.nic(0, 0), Device.switch(1), 0.1)
    degraded = fabric.transfer_seconds(src, dst, 10 << 20)
    assert degraded > 5 * healthy


def test_degrade_leaves_other_routes_untouched():
    env, topo, fabric = make()
    other = fabric.transfer_seconds(Device.gpu(0, 3), Device.gpu(1, 3), 1 << 20)
    topo.degrade_link(Device.nic(0, 0), Device.switch(1), 0.1)
    # Socket-1 GPUs use rail 1; unaffected.
    assert fabric.transfer_seconds(
        Device.gpu(0, 3), Device.gpu(1, 3), 1 << 20
    ) == pytest.approx(other)


def test_degrade_duplex_affects_both_directions():
    env, topo, fabric = make()
    topo.degrade_link(Device.nic(0, 0), Device.switch(1), 0.5)
    fwd = topo.link(Device.nic(0, 0), Device.switch(1))
    rev = topo.link(Device.switch(1), Device.nic(0, 0))
    assert "degraded" in fwd.spec.name and "degraded" in rev.spec.name


def test_degrade_simplex_option():
    env, topo, fabric = make()
    topo.degrade_link(Device.nic(0, 0), Device.switch(1), 0.5, duplex=False)
    rev = topo.link(Device.switch(1), Device.nic(0, 0))
    assert "degraded" not in rev.spec.name


def test_degrade_validation():
    env, topo, fabric = make()
    with pytest.raises(ValueError):
        topo.degrade_link(Device.nic(0, 0), Device.switch(1), 0.0)
    with pytest.raises(ValueError):
        topo.degrade_link(Device.nic(0, 0), Device.switch(1), 1.5)


def test_degrade_invalidates_route_cache():
    env, topo, fabric = make()
    src, dst = Device.gpu(0, 0), Device.gpu(1, 0)
    before = topo.route_bandwidth(src, dst)
    topo.degrade_link(Device.nic(0, 0), Device.switch(1), 0.5)
    after = topo.route_bandwidth(src, dst)
    assert after == pytest.approx(before * 0.5)
