"""Tests for devices, links, and the Summit topology."""

import pytest

from repro.cluster import Device, LinkSpec, Topology, build_summit
from repro.cluster.summit import SUMMIT_NODE, SummitNodeSpec
from repro.sim import Environment
from repro.sim.units import gbyte_per_s, microseconds


def test_linkspec_validation():
    with pytest.raises(ValueError):
        LinkSpec("bad", -1e-6, 1e9)
    with pytest.raises(ValueError):
        LinkSpec("bad", 1e-6, 0)


def test_linkspec_transfer_seconds():
    spec = LinkSpec("l", 1e-6, 1e9)
    assert spec.transfer_seconds(0) == 1e-6
    assert spec.transfer_seconds(10**9) == pytest.approx(1.000001)


def test_device_ordering_is_rank_order():
    devs = [Device.gpu(1, 0), Device.gpu(0, 5), Device.gpu(0, 0)]
    assert sorted(devs) == [Device.gpu(0, 0), Device.gpu(0, 5), Device.gpu(1, 0)]


def test_topology_duplex_links_are_independent():
    env = Environment()
    topo = Topology(env)
    a, b = Device.gpu(0, 0), Device.gpu(0, 1)
    topo.add_link(a, b, LinkSpec("l", 1e-6, 1e9))
    assert topo.link(a, b) is not topo.link(b, a)


def test_route_self_is_empty():
    env = Environment()
    topo = build_summit(env, nodes=1)
    g = Device.gpu(0, 0)
    assert topo.route(g, g) == []
    assert topo.route_bandwidth(g, g) == float("inf")


def test_summit_node_shape():
    assert SUMMIT_NODE.gpus_per_node == 6
    assert SummitNodeSpec(sockets=2, gpus_per_socket=2).gpus_per_node == 4


def test_summit_gpu_count_and_rank_order():
    env = Environment()
    topo = build_summit(env, nodes=3)
    gpus = topo.gpus()
    assert len(gpus) == 18
    assert gpus[0] == Device.gpu(0, 0)
    assert gpus[7] == Device.gpu(1, 1)


def test_summit_same_socket_gpus_direct_nvlink():
    env = Environment()
    topo = build_summit(env, nodes=1)
    route = topo.route(Device.gpu(0, 0), Device.gpu(0, 2))
    assert len(route) == 1
    assert route[0].spec.name == "nvlink2-gg"


def test_summit_cross_socket_route_uses_xbus():
    env = Environment()
    topo = build_summit(env, nodes=1)
    route = topo.route(Device.gpu(0, 0), Device.gpu(0, 3))
    names = [l.spec.name for l in route]
    assert "x-bus" in names
    # gpu -> cpu0 -> cpu1 -> gpu
    assert names[0] == "nvlink2-gc" and names[-1] == "nvlink2-gc"


def test_summit_inter_node_route_crosses_ib():
    env = Environment()
    topo = build_summit(env, nodes=2)
    route = topo.route(Device.gpu(0, 0), Device.gpu(1, 0))
    names = [l.spec.name for l in route]
    assert names.count("ib-edr") == 2  # injection + reception
    assert "pcie4-x8" in names


def test_summit_bottleneck_bandwidth_inter_node():
    env = Environment()
    topo = build_summit(env, nodes=2)
    bw = topo.route_bandwidth(Device.gpu(0, 0), Device.gpu(1, 0))
    assert bw == pytest.approx(gbyte_per_s(12.3))


def test_summit_multi_leaf_routes_exist():
    env = Environment()
    topo = build_summit(env, nodes=40, nodes_per_leaf=18)
    # Nodes 0 and 39 are on different leaves -> route crosses the spine.
    route = topo.route(Device.gpu(0, 0), Device.gpu(39, 5))
    names = [l.spec.name for l in route]
    assert names.count("ib-edr-uplink") == 2


def test_summit_invalid_args():
    env = Environment()
    with pytest.raises(ValueError):
        build_summit(env, nodes=0)
    with pytest.raises(ValueError):
        build_summit(env, nodes=2, nodes_per_leaf=0)


def test_route_latency_is_sum():
    env = Environment()
    topo = build_summit(env, nodes=1)
    route = topo.route(Device.gpu(0, 0), Device.gpu(0, 1))
    assert topo.route_latency(Device.gpu(0, 0), Device.gpu(0, 1)) == pytest.approx(
        sum(l.latency_s for l in route)
    )
    assert topo.route_latency(Device.gpu(0, 0), Device.gpu(0, 1)) == pytest.approx(
        microseconds(1.9)
    )
