"""Critical-path engine: properties, reconciliation and reporting."""

import pytest

from repro.telemetry import BUCKETS, attribute_measurement
from repro.trace import (
    SpanRecorder,
    compute_critical_path,
    explain_measurement,
)


@pytest.fixture(scope="module")
def report(traced_measurement):
    return explain_measurement(traced_measurement)


def test_path_never_exceeds_wall(report):
    for p in report.iterations:
        assert p.path_s <= p.wall_s + 1e-9
        # ... and covers at least the largest single bucket.
        assert p.path_s >= max(p.buckets().values()) - 1e-9


def test_path_equals_wall_by_construction(report):
    # The segment walk spans the whole iteration: path == wall.
    assert report.mean_path_s == pytest.approx(report.mean_wall_s)
    assert report.max_sum_error < 1e-9


def test_reconciles_with_attribution(traced_measurement, report):
    att = attribute_measurement(traced_measurement)
    cp_tot, att_tot = report.totals(), att.totals()
    for bucket in BUCKETS:
        assert cp_tot[bucket] == pytest.approx(att_tot[bucket], abs=1e-9), \
            bucket
    assert report.shares().keys() == att.shares().keys()
    assert sum(report.shares().values()) == pytest.approx(1.0)


def test_segments_are_ordered_and_contiguous(report):
    for p in report.iterations:
        segs = p.segments
        assert segs
        for a, b in zip(segs, segs[1:]):
            assert a.end_s <= b.start_s + 1e-9
        assert all(s.seconds >= -1e-12 for s in segs)


def test_slack_non_negative_and_zero_on_path(report):
    assert report.slack_s
    assert all(s >= -1e-9 for s in report.slack_s.values())
    assert any(s == 0.0 for s in report.slack_s.values())


def test_link_dwell_present_at_links_level(report):
    assert report.level == "links"
    # The traced run exposes some allreduce, so links accrue dwell.
    assert isinstance(report.link_dwell_s, dict)
    for label, seconds in report.dwell_by_link():
        assert isinstance(label, str) and seconds >= 0


def test_ranked_views_and_top_spans(report):
    dwell = report.dwell_by_phase()
    assert dwell and dwell == sorted(dwell, key=lambda kv: -kv[1])
    top = report.top_spans(count=3)
    assert 0 < len(top) <= 3
    assert all({"sid", "cat", "name", "seconds_per_iter", "share"}
               <= set(item) for item in top)
    summary = report.trace_summary()
    assert summary["critical_path_ms"] > 0
    assert summary["level"] == "links"
    assert 0 <= summary["exposed_allreduce_share"] <= 1
    assert all("sid" not in item for item in summary["top_spans"])
    text = report.report()
    assert "critical path" in text and "top bottleneck spans" in text


def test_untraced_measurement_is_rejected():
    from repro.core import measure_training, paper_tuned_config

    m = measure_training(2, paper_tuned_config(), iterations=2,
                         telemetry=True)
    with pytest.raises(ValueError, match="no trace"):
        explain_measurement(m)


def test_empty_recorder_is_rejected():
    with pytest.raises(ValueError, match="ITERATION"):
        compute_critical_path(SpanRecorder())
