"""Shared fixtures: one small traced run reused across the trace tests."""

import pytest

from repro.core import measure_training, paper_default_config


@pytest.fixture(scope="package")
def traced_measurement():
    """A deterministic link-level traced run (6 GPUs, 2 iterations)."""
    return measure_training(6, paper_default_config(), iterations=2,
                            jitter_std=0.03, seed=0, telemetry=True,
                            trace="links")
