"""Unit and property tests for the span recorder and its JSON format."""

import json
import pickle

import pytest

from repro.trace import (
    SPAN_SCHEMA_VERSION,
    SpanRecorder,
    load_spans,
    save_spans,
    well_nested_violations,
)
from repro.trace.spans import Span


# -- recorder basics -------------------------------------------------------

def test_record_begin_end_and_queries():
    rec = SpanRecorder()
    root = rec.begin("ITERATION", "iter_0", 1.0, rank=0)
    child = rec.record("FORWARD", "forward", 1.0, 1.5, parent=root)
    rec.end(root, 2.0)
    assert rec.spans[root].duration_s == pytest.approx(1.0)
    assert rec.spans[child].parent == root
    assert [s.sid for s in rec.children_of(root)] == [child]
    assert [s.sid for s in rec.by_cat("FORWARD")] == [child]
    assert rec.child_index()[root][0].sid == child
    assert rec.spans[root].tags == {"rank": 0}


def test_bad_level_rejected():
    with pytest.raises(ValueError):
        SpanRecorder(level="everything")


def test_link_detail_flag():
    assert not SpanRecorder(level="spans").link_detail
    assert SpanRecorder(level="links").link_detail


# -- persistence -----------------------------------------------------------

def test_save_load_round_trip(tmp_path):
    rec = SpanRecorder(level="links")
    root = rec.record("ITERATION", "iter_0", 0.0, 2.0, rank=3)
    rec.record("TRANSFER", "nvlink", 0.5, 0.7, parent=root,
               src=3, dst=4, bytes=1024, links=["gpu:0:3->gpu:0:4"])
    path = save_spans(rec, tmp_path / "spans.json")
    loaded = load_spans(path)
    assert loaded.level == "links"
    assert loaded.to_payload() == rec.to_payload()
    # The loaded recorder can keep allocating fresh ids.
    assert loaded.record("FORWARD", "f", 0.0, 1.0) == 2


def test_load_rejects_wrong_schema(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({
        "schema_version": SPAN_SCHEMA_VERSION + 1, "level": "spans",
        "spans": [],
    }))
    with pytest.raises(ValueError, match="unsupported span schema"):
        load_spans(bad)


def test_pickle_drops_live_references():
    rec = SpanRecorder()
    rec.attach(env=object())
    rec.comm_parent = 7
    rec._rank_parent[0] = 3
    rec.record("ITERATION", "iter_0", 0.0, 1.0)
    clone = pickle.loads(pickle.dumps(rec))
    assert clone._env is None
    assert clone.comm_parent is None and clone._rank_parent == {}
    assert clone.to_payload() == rec.to_payload()


# -- well-nestedness checker ----------------------------------------------

def test_well_nested_detects_violations():
    good = [Span(0, None, "ITERATION", "i", 0.0, 2.0),
            Span(1, 0, "FORWARD", "f", 0.0, 1.0)]
    assert well_nested_violations(good) == []
    orphan = [Span(0, 99, "FORWARD", "f", 0.0, 1.0)]
    assert any("orphan parent" in p for p in well_nested_violations(orphan))
    escape = [Span(0, None, "ITERATION", "i", 0.0, 1.0),
              Span(1, 0, "FORWARD", "f", 0.5, 1.5)]
    assert any("escapes parent" in p for p in well_nested_violations(escape))
    negative = [Span(0, None, "FORWARD", "f", 1.0, 0.5)]
    assert any("ends before start" in p
               for p in well_nested_violations(negative))


# -- properties of a real traced run ---------------------------------------

def test_traced_run_spans_are_well_nested(traced_measurement):
    rec = traced_measurement.trace
    assert rec.spans, "traced run recorded no spans"
    assert well_nested_violations(rec.spans) == []


def test_traced_run_span_taxonomy(traced_measurement):
    rec = traced_measurement.trace
    iterations = rec.by_cat("ITERATION")
    # One ITERATION span per (rank, iteration), warmup included.
    gpus = traced_measurement.gpus
    assert len(iterations) == gpus * len(
        traced_measurement.stats.iteration_seconds)
    for it in iterations:
        assert {"rank", "iteration"} <= set(it.tags)
        kid_cats = {c.cat for c in rec.children_of(it.sid)}
        assert {"FORWARD", "BACKWARD", "OPTIMIZER"} <= kid_cats
    # Every COLLECTIVE fans out to per-rank ALG_STEP children.
    for coll in rec.by_cat("COLLECTIVE"):
        steps = [c for c in rec.children_of(coll.sid)
                 if c.cat == "ALG_STEP"]
        assert steps and all("rank" in s.tags for s in steps)
    # links level: TRANSFER spans exist and parent under ALG_STEPs.
    transfers = rec.by_cat("TRANSFER")
    assert transfers
    by_sid = {s.sid: s for s in rec.spans}
    for t in transfers:
        assert {"src", "dst", "bytes", "wait_s", "links"} <= set(t.tags)
        if t.parent is not None:
            assert by_sid[t.parent].cat == "ALG_STEP"


def test_traced_run_payload_round_trips(traced_measurement, tmp_path):
    rec = traced_measurement.trace
    loaded = load_spans(save_spans(rec, tmp_path / "run.json"))
    assert json.dumps(loaded.to_payload()) == json.dumps(rec.to_payload())
