"""Spans survive checkpoint/resume: payload JSON is bit-identical.

The recorder rides inside the trainer's checkpoint snapshot; a run
interrupted at a boundary and resumed must end with exactly the spans of
the uninterrupted run.  The gate compares canonical JSON payloads —
pickle bytes are not stable across an unpickle (memoization differs)
even when every value is equal.
"""

import json
import pickle

from repro.core import measure_training, paper_tuned_config


def test_spans_survive_interrupt_resume():
    from repro.checkpoint import CheckpointPlan, resume_training

    kwargs = dict(iterations=5, jitter_std=0.03, seed=0, trace="spans")
    gpus = 6
    baseline = measure_training(gpus, paper_tuned_config(), **kwargs)

    interrupted = measure_training(
        gpus, paper_tuned_config(),
        checkpoint=CheckpointPlan(every=1, stop_at=2), **kwargs)
    assert interrupted.interrupted and interrupted.checkpoint is not None
    # The captured state carries the recorder mid-run.
    mid = pickle.loads(interrupted.checkpoint.state["trace"])
    assert 0 < len(mid.spans) < len(baseline.trace.spans)

    resumed = resume_training(interrupted.checkpoint)
    assert resumed.trace is not None
    assert (json.dumps(resumed.trace.to_payload())
            == json.dumps(baseline.trace.to_payload()))
    assert (pickle.dumps(resumed.stats)
            == pickle.dumps(baseline.stats))
