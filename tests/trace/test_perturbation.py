"""Zero-perturbation gate: tracing on vs off is bit-identical.

The recorder never schedules events and only reads ``env.now`` at
instants the instrumented code already reaches, so the simulated
timings — training statistics, the Horovod timeline, the kernel's event
count, the final clock — must be byte-for-byte identical with tracing
enabled at either level.
"""

import math
import pickle

import pytest

from repro.core import (
    measure_training,
    paper_default_config,
    paper_tuned_config,
)


@pytest.mark.parametrize("level", ["spans", "links"])
@pytest.mark.parametrize("config_fn,gpus", [
    (paper_default_config, 6),
    (paper_tuned_config, 12),
])
def test_training_timings_bit_identical(config_fn, gpus, level):
    kwargs = dict(iterations=2, jitter_std=0.03, seed=0, telemetry=True)
    off = measure_training(gpus, config_fn(), **kwargs)
    on = measure_training(gpus, config_fn(), trace=level, **kwargs)
    assert pickle.dumps(on.stats) == pickle.dumps(off.stats)
    assert on.timeline.events == off.timeline.events
    assert on.runtime_stats == off.runtime_stats
    assert on.link_utilization == off.link_utilization
    assert on.trace is not None and off.trace is None


def _osu(tracer=None):
    from repro.cluster import Fabric, build_summit
    from repro.mpi import MVAPICH2_GDR
    from repro.mpi.communicator import Comm
    from repro.mpi.osu import osu_allreduce
    from repro.sim import Environment

    gpus = 12
    env = Environment()
    topo = build_summit(env, nodes=math.ceil(gpus / 6))
    comm = Comm(Fabric(topo), topo.gpus()[:gpus], MVAPICH2_GDR)
    if tracer is not None:
        tracer.attach(env=env, comm=comm, fabric=comm.fabric)
    result = osu_allreduce(comm, 1 << 20, iterations=3)
    return env, result


def test_osu_kernel_fingerprint_bit_identical():
    """Same event count, same clock, same latency — tracing is invisible."""
    from repro.trace import SpanRecorder

    env_off, res_off = _osu()
    tracer = SpanRecorder(level="links")
    env_on, res_on = _osu(tracer)
    assert res_on == res_off
    assert env_on.now == env_off.now
    assert env_on.events_scheduled == env_off.events_scheduled
    # ... while the traced run actually recorded the collective.
    assert tracer.by_cat("COLLECTIVE") and tracer.by_cat("TRANSFER")
