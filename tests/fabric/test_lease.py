"""The shared lease engine: grants, heartbeats, TOCTOU-closed sweeps."""

import threading
from dataclasses import dataclass

import pytest

from repro.fabric.lease import LeaseManager, Leasable, atomic_write


@dataclass
class Entry:
    state: str = "LEASED"
    worker: str | None = None
    lease_until: float | None = None
    attempts: int = 0
    recoveries: int = 0


def make_manager(clock, **kwargs):
    kwargs.setdefault("active_states", ("LEASED",))
    kwargs.setdefault("lease_s", 10.0)
    return LeaseManager(clock=lambda: clock[0], **kwargs)


def test_entry_duck_typing():
    assert isinstance(Entry(), Leasable)


def test_grant_stamps_holder_expiry_and_attempt():
    clock = [100.0]
    leases = make_manager(clock)
    entry = Entry()
    until = leases.grant(entry, "w0")
    assert (entry.worker, entry.attempts) == ("w0", 1)
    assert until == entry.lease_until == 110.0
    assert leases.grant(entry, "w1", lease_s=5.0) == 105.0
    assert entry.attempts == 2


def test_refresh_extends_only_live_leases():
    clock = [0.0]
    leases = make_manager(clock)
    entry = Entry()
    leases.grant(entry, "w0")
    clock[0] = 8.0
    assert leases.refresh(entry) is True
    assert entry.lease_until == 18.0
    leases.release(entry)
    assert entry.worker is None and entry.lease_until is None
    # A late heartbeat must not resurrect a released lease.
    assert leases.refresh(entry) is False
    entry.state = "DONE"
    entry.worker = "w0"
    assert leases.refresh(entry) is False


def test_expired_respects_state_skip_and_clock():
    clock = [0.0]
    leases = make_manager(clock)
    entry = Entry()
    leases.grant(entry, "w0")
    assert not leases.expired(entry, now=5.0)
    assert leases.expired(entry, now=11.0)
    assert not leases.expired(entry, now=11.0, skip_workers={"w0"})
    entry.state = "DONE"
    assert not leases.expired(entry, now=11.0)


def test_sweep_reclaims_expired_and_returns_them():
    clock = [0.0]
    leases = make_manager(clock)
    stale, live = Entry(), Entry()
    leases.grant(stale, "dead")
    leases.grant(live, "alive")
    clock[0] = 20.0
    leases.refresh(live)
    reclaimed = []
    touched = leases.sweep_expired(lambda: [stale, live],
                                   lock=threading.Lock(),
                                   reclaim=reclaimed.append)
    assert touched == reclaimed == [stale]


def test_sweep_recheck_rescues_mid_sweep_heartbeat():
    """The TOCTOU window: a heartbeat landing between the snapshot and
    an entry's reclaim turn must rescue that entry."""
    clock = [0.0]
    leases = make_manager(clock)
    first, second = Entry(), Entry()
    leases.grant(first, "w-first")
    leases.grant(second, "w-second")
    clock[0] = 20.0  # both lapsed; both land in the snapshot

    reclaimed = []

    def reclaim(entry):
        reclaimed.append(entry)
        # While `first` is being reclaimed (a slow journal write in
        # real life), `second`'s holder heartbeats.
        leases.refresh(second)

    touched = leases.sweep_expired(lambda: [first, second],
                                   lock=threading.RLock(), reclaim=reclaim)
    assert touched == reclaimed == [first]
    assert second.lease_until == 30.0  # still leased, lease refreshed


def test_sweep_skip_workers_never_reclaimed():
    clock = [0.0]
    leases = make_manager(clock)
    mine = Entry()
    leases.grant(mine, "local-thread")
    clock[0] = 50.0
    touched = leases.sweep_expired(lambda: [mine], lock=threading.Lock(),
                                   reclaim=lambda e: None,
                                   skip_workers={"local-thread"})
    assert touched == []


def test_should_quarantine_counts_recoveries():
    leases = make_manager([0.0], max_recoveries=2)
    entry = Entry(recoveries=1)
    assert not leases.should_quarantine(entry)
    entry.recoveries = 2
    assert leases.should_quarantine(entry)


def test_validation():
    with pytest.raises(ValueError, match="lease_s"):
        LeaseManager(active_states=("LEASED",), lease_s=0.0)
    with pytest.raises(ValueError, match="max_recoveries"):
        LeaseManager(active_states=("LEASED",), max_recoveries=-1)


def test_atomic_write_replaces_and_leaves_no_temp(tmp_path):
    target = tmp_path / "deep" / "result.json"
    assert atomic_write(target, "first") == target
    atomic_write(target, b"second")
    assert target.read_bytes() == b"second"
    assert list(target.parent.glob("*.tmp")) == []
