"""Synthetic points shared by the fabric tests.

A real module (not a test file) so fork-spawned worker processes can
unpickle them by reference: both the thread-mode unit tests and the
multi-process chaos battery ship these over the wire.
"""

from dataclasses import dataclass
from typing import ClassVar

from repro.runner.simpoint import SimPoint


@dataclass(frozen=True)
class OkPoint(SimPoint):
    """Deterministic success: returns a payload derived from its token."""

    kind: ClassVar[str] = "fabric_ok"
    token: str
    delay_s: float = 0.0

    def execute(self):
        if self.delay_s:
            import time

            time.sleep(self.delay_s)
        return {"token": self.token, "squared": len(self.token) ** 2}

    def describe(self):
        return f"ok:{self.token}"


@dataclass(frozen=True)
class FailPoint(SimPoint):
    """Always raises — a deterministic poison point."""

    kind: ClassVar[str] = "fabric_fail"
    token: str

    def execute(self):
        raise ValueError(f"poison {self.token}")

    def describe(self):
        return f"fail:{self.token}"
