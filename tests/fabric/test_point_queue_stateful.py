"""Property-based interleaving test: the PointQueue under clock skew.

A Hypothesis state machine drives a :class:`PointQueue` through random
interleavings of lease / heartbeat / complete / fail / expiry sweeps
while the (injected) clock jumps forward and *backward*.  Whatever the
order, the safety invariants must hold:

* no point is ever lost — the item-id set never changes, and every
  item is always in a legal lifecycle state;
* no point is doubly completed — the journal records at most one
  ``point_done`` per item, and DONE is sticky (a later failure report
  or expiry sweep never resurrects a completed item);
* a lease is held by at most the worker the queue says holds it.
"""

import json

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.fabric.queue import ItemState, PointQueue

from tests.fabric._points import OkPoint

N_POINTS = 5
WORKERS = ("w0", "w1", "w2")


class PointQueueMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.now = 1_000.0
        self.tmp = None
        import tempfile
        self.tmp = tempfile.TemporaryDirectory()
        self.queue = PointQueue(self.tmp.name, lease_s=10.0,
                                retries=1, max_recoveries=3,
                                clock=lambda: self.now)
        points = [OkPoint(token=f"sp{i}") for i in range(N_POINTS)]
        _batch, self.ids = self.queue.enqueue(points)
        self.done_seen: set[str] = set()

    def teardown(self):
        self.tmp.cleanup()

    # -- actions -----------------------------------------------------------
    @rule(worker=st.sampled_from(WORKERS))
    def lease(self, worker):
        item = self.queue.lease(worker)
        if item is not None:
            assert item.state == ItemState.LEASED
            assert item.worker == worker

    @rule(worker=st.sampled_from(WORKERS),
          index=st.integers(min_value=0, max_value=N_POINTS - 1))
    def heartbeat(self, worker, index):
        ok = self.queue.heartbeat(worker, self.ids[index])
        item = self.queue.get(self.ids[index])
        if ok:
            # Only the recorded holder may refresh.
            assert item.worker == worker and item.state == ItemState.LEASED

    @rule(worker=st.sampled_from(WORKERS),
          index=st.integers(min_value=0, max_value=N_POINTS - 1))
    def complete(self, worker, index):
        status = self.queue.complete(worker, self.ids[index])
        assert status in ("done", "late", "duplicate")
        if status == "duplicate":
            assert self.ids[index] in self.done_seen
        self.done_seen.add(self.ids[index])
        assert self.queue.get(self.ids[index]).state == ItemState.DONE

    @rule(worker=st.sampled_from(WORKERS),
          index=st.integers(min_value=0, max_value=N_POINTS - 1))
    def fail(self, worker, index):
        before = self.queue.get(self.ids[index]).state
        state = self.queue.fail(worker, self.ids[index], "chaos says no")
        if before == ItemState.DONE:
            assert state == ItemState.DONE  # stale report: no-op
        else:
            assert state in (ItemState.PENDING, ItemState.FAILED,
                             ItemState.LEASED)

    @rule()
    def requeue_expired(self):
        self.queue.requeue_expired()

    @rule(dt=st.floats(min_value=-1.0, max_value=20.0,
                       allow_nan=False, allow_infinity=False))
    def advance_clock(self, dt):
        self.now += dt

    # -- safety invariants --------------------------------------------------
    @invariant()
    def no_point_lost(self):
        items = {item.id: item for item in self.queue.items()}
        assert set(items) == set(self.ids)
        for item in items.values():
            assert item.state in ItemState.ALL
            if item.state == ItemState.LEASED:
                assert item.worker in WORKERS
            if item.state == ItemState.PENDING:
                assert item.worker is None

    @invariant()
    def done_is_sticky(self):
        for item_id in self.done_seen:
            assert self.queue.get(item_id).state == ItemState.DONE

    @invariant()
    def journal_never_doubles_a_completion(self):
        journal = self.queue.journal
        done = [record for record in journal.events()
                if record.get("event") == "point_done"]
        ids = [record["id"] for record in done]
        assert len(ids) == len(set(ids)), "double point_done journaled"
        # Journal and live state agree on what completed.
        assert set(ids) == {item.id for item in self.queue.items()
                            if item.state == ItemState.DONE}


TestPointQueueInterleavings = PointQueueMachine.TestCase
TestPointQueueInterleavings.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None)
