"""Chaos gate: SIGKILL a fabric worker mid-lease, exactly-once holds.

Three real worker *processes* (fork) pull points over HTTP from a
coordinator in this process.  One worker is SIGKILLed while it holds
the lease on a deliberately slow point; the lease lapses, the sweep
requeues the point, a surviving worker finishes it — and the merged
results are byte-identical to a serial run, with the lease journal
showing exactly one ``point_done`` per point.
"""

import json
import multiprocessing
import os
import pickle
import signal
import threading
import time

import pytest

from repro.fabric import FabricRunner, ItemState
from repro.runner import Runner

from tests.fabric._points import OkPoint


def _worker_main(url: str, name: str) -> None:
    """Child body: one pull worker against the parent's coordinator."""
    from repro.fabric import FabricClient, FabricWorker, HttpTransport

    client = FabricClient(HttpTransport(url, timeout_s=10.0, retries=2))
    FabricWorker(client, worker=name, poll_s=0.02,
                 lease_s=1.0).run_forever()


@pytest.mark.chaos
def test_sigkill_mid_lease_completes_exactly_once(tmp_path):
    slow = OkPoint(token="slow-victim", delay_s=2.0)
    points = [slow] + [OkPoint(token=f"p{i}", delay_s=0.1)
                       for i in range(6)]
    serial = Runner(workers=0).run(list(points))

    fabric = FabricRunner(workers=3, spawn=None,
                          state_dir=tmp_path / "fab",
                          lease_s=1.0, poll_s=0.02)
    url = fabric.start()
    ctx = multiprocessing.get_context("fork")
    procs = {}
    for i in range(3):
        name = f"chaos:{i}"
        proc = ctx.Process(target=_worker_main, args=(url, name),
                           daemon=True)
        proc.start()
        procs[name] = proc

    results = {}
    driver = threading.Thread(
        target=lambda: results.update(values=fabric.run(list(points))),
        daemon=True)
    driver.start()

    # Wait until some worker holds the slow point's lease, then kill it.
    victim = None
    deadline = time.monotonic() + 30.0
    while victim is None and time.monotonic() < deadline:
        for item in fabric.coordinator.queue.items():
            if item.key == slow.key() and item.state == ItemState.LEASED:
                victim = item.worker
                break
        time.sleep(0.02)
    assert victim is not None, "slow point was never leased"
    os.kill(procs[victim].pid, signal.SIGKILL)
    procs[victim].join(timeout=10.0)

    driver.join(timeout=90.0)
    assert not driver.is_alive(), "fabric run did not recover from the kill"
    fabric.close()
    for proc in procs.values():
        proc.join(timeout=10.0)

    # The distributed sweep is byte-identical to the serial one.
    assert [pickle.dumps(v) for v in results["values"]] == \
        [pickle.dumps(v) for v in serial]

    # Exactly-once: the journal records one point_done per point, and
    # at least one dead-worker recovery proves the kill landed mid-lease.
    journal = tmp_path / "fab" / "fabric.jsonl"
    events = [json.loads(line)
              for line in journal.read_text().splitlines()]
    done = [e for e in events if e["event"] == "point_done"]
    assert len(done) == len({e["id"] for e in done}) == len(points)
    recoveries = [e for e in events if e["event"] == "point_requeued"
                  and e.get("recoveries", 0) >= 1]
    assert recoveries, "expected a dead-worker lease recovery"


@pytest.mark.chaos
def test_process_fleet_respawns_dead_worker(tmp_path):
    """spawn="process" mode: a killed subprocess is respawned by the
    drive loop and the batch still completes."""
    points = [OkPoint(token=f"r{i}", delay_s=0.2) for i in range(6)]
    fabric = FabricRunner(workers=2, spawn="process",
                          state_dir=tmp_path / "fab",
                          lease_s=1.0, poll_s=0.05)
    with fabric:
        pids = fabric.worker_pids()
        assert len(pids) == 2
        os.kill(pids[0], signal.SIGKILL)
        values = fabric.run(list(points))
    assert all(v["token"] == f"r{i}" for i, v in enumerate(values))
    assert fabric.stats.pool_respawns >= 1
