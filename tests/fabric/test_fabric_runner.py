"""FabricRunner: the local Runner surface over pulled workers.

Thread-mode fleets (no sockets beyond the loopback coordinator) keep
these fast; the multi-process SIGKILL battery lives in
``test_chaos_fabric.py``.
"""

import pickle
import threading

import pytest

from repro.fabric import FabricCoordinator, FabricRunner
from repro.runner import ExecutionBackend, ResultCache, Runner, RunnerError
from repro.telemetry import to_prometheus

from tests.fabric._points import FailPoint, OkPoint


def make_runner(tmp_path, **kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("spawn", "thread")
    kwargs.setdefault("poll_s", 0.01)
    kwargs.setdefault("lease_s", 5.0)
    kwargs.setdefault("state_dir", tmp_path / "fab")
    return FabricRunner(**kwargs)


def test_satisfies_execution_backend(tmp_path):
    runner = make_runner(tmp_path)
    try:
        assert isinstance(runner, ExecutionBackend)
    finally:
        runner.close()


def test_results_byte_identical_to_serial(tmp_path):
    points = [OkPoint(token=t) for t in ("a", "bb", "ccc", "dddd")]
    serial = Runner(workers=0).run(list(points))
    with make_runner(tmp_path) as fabric:
        fanned = fabric.run(list(points))
    assert [pickle.dumps(v) for v in fanned] == \
        [pickle.dumps(v) for v in serial]
    meta = fabric.meta()
    assert meta["backend"] == "fabric" and meta["executed"] == 4


def test_dedup_and_input_order(tmp_path):
    points = [OkPoint(token="a"), OkPoint(token="bb"), OkPoint(token="a")]
    with make_runner(tmp_path) as fabric:
        values = fabric.run(points)
    assert values[0] == values[2] == {"token": "a", "squared": 1}
    assert values[1]["token"] == "bb"
    assert fabric.stats.deduplicated == 1


def test_shared_cache_turns_rerun_into_hits(tmp_path):
    cache = ResultCache(directory=tmp_path / "cache")
    points = [OkPoint(token=t) for t in ("a", "bb")]
    with make_runner(tmp_path, cache=cache) as fabric:
        first = fabric.run(list(points))
        second = fabric.run(list(points))
    assert [pickle.dumps(v) for v in first] == \
        [pickle.dumps(v) for v in second]
    assert fabric.stats.cache_hits == 2
    assert fabric.meta()["cache"]["hits"] == 2


def test_raise_policy_propagates_point_failure(tmp_path):
    with make_runner(tmp_path) as fabric:
        with pytest.raises(RunnerError, match="fail:bad"):
            fabric.run([FailPoint(token="bad")])


def test_quarantine_policy_resolves_none(tmp_path):
    with make_runner(tmp_path, failure_policy="quarantine") as fabric:
        values = fabric.run([OkPoint(token="a"), FailPoint(token="bad")])
    assert values[0]["token"] == "a"
    assert values[1] is None
    assert len(fabric.quarantined) == 1
    assert fabric.meta()["quarantined_points"][0]["point"] == "fail:bad"
    assert "runner_quarantined_total 1" in to_prometheus(fabric.registry)


def test_run_points_overrides_are_batch_scoped(tmp_path):
    seen = []
    with make_runner(tmp_path) as fabric:
        values = fabric.run_points(
            [OkPoint(token="a")], retries=3, timeout_s=9.0,
            on_progress=lambda done, total, point, cached:
                seen.append((done, total, cached)))
        assert fabric.coordinator.queue.retries == 0  # restored
        assert fabric.timeout_s is None
        assert fabric.progress is None
    assert values[0]["token"] == "a"
    assert seen == [(1, 1, False)]


def test_concurrent_run_points_keep_overrides_isolated(tmp_path):
    """Two scheduler-style threads sharing one backend must not
    cross-wire progress callbacks or retry budgets (regression: the
    old implementation mutated shared instance state per batch)."""
    seen = {"a": [], "b": []}
    out = {}
    with make_runner(tmp_path, workers=2) as fabric:
        def job(name, tokens):
            pts = [OkPoint(token=t) for t in tokens]
            out[name] = fabric.run_points(
                pts, retries=1,
                on_progress=lambda done, total, point, cached:
                    seen[name].append(point.token))

        threads = [
            threading.Thread(target=job, args=("a", ["a1", "a2", "a3"])),
            threading.Thread(target=job, args=("b", ["b1", "b2", "b3"])),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
    assert [v["token"] for v in out["a"]] == ["a1", "a2", "a3"]
    assert [v["token"] for v in out["b"]] == ["b1", "b2", "b3"]
    # Each batch's callback saw exactly its own points.
    assert sorted(seen["a"]) == ["a1", "a2", "a3"]
    assert sorted(seen["b"]) == ["b1", "b2", "b3"]


def test_duplicate_completion_cannot_overwrite_stored_result(tmp_path):
    """First write wins: once a completion is journaled, a buggy or
    nondeterministic duplicate must not replace the cached bytes."""
    cache = ResultCache(directory=tmp_path / "cache")
    coordinator = FabricCoordinator(tmp_path / "fab", cache=cache)
    _, (item_id,) = coordinator.queue.enqueue([OkPoint(token="a")])
    key = OkPoint(token="a").key()
    coordinator.queue.lease("w0")
    assert coordinator.complete("w0", item_id, {"v": 1}) == "done"
    assert coordinator.complete("w1", item_id, {"v": 2}) == "duplicate"
    assert coordinator.value(key) == {"v": 1}
    assert cache.get(key) == {"v": 1}


def test_serve_refuses_non_loopback_bind_without_token(tmp_path):
    coordinator = FabricCoordinator(tmp_path / "fab")
    with pytest.raises(ValueError, match="non-loopback.*token"):
        coordinator.serve(host="0.0.0.0")
    assert coordinator.url is None  # nothing was bound
    coordinator.close()


def test_validation_errors():
    with pytest.raises(ValueError, match="workers"):
        FabricRunner(workers=0)
    with pytest.raises(ValueError, match="failure_policy"):
        FabricRunner(failure_policy="explode")
    with pytest.raises(ValueError, match="spawn"):
        FabricRunner(spawn="hologram")


def test_runner_metrics_mirror_local_names(tmp_path):
    with make_runner(tmp_path) as fabric:
        fabric.run([OkPoint(token="a")])
    text = to_prometheus(fabric.registry)
    assert 'runner_points_total{status="executed"} 1' in text
    assert "runner_batches_total 1" in text
    assert "runner_workers 2" in text
    assert "fabric_leases_total" in text  # protocol counters ride along
