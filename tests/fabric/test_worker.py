"""The pull worker against an in-process coordinator (no sockets)."""

import base64
import threading

import pytest

from repro.fabric import (
    FabricClient,
    FabricCoordinator,
    FabricWorker,
    InProcessTransport,
    ItemState,
)
from repro.fabric.worker import (
    PayloadError,
    decode_payload,
    encode_payload,
    worker_id,
)
from repro.telemetry import to_prometheus
from repro.telemetry.metrics import MetricRegistry

from tests.fabric._points import FailPoint, OkPoint


def make_fabric(tmp_path, **kwargs):
    coordinator = FabricCoordinator(tmp_path / "fab", **kwargs)
    client = FabricClient(InProcessTransport(coordinator.app))
    return coordinator, client


def test_payload_codec_round_trips():
    point = OkPoint(token="abc")
    assert decode_payload(encode_payload(point)) == point


def test_keyed_payload_signs_and_verifies():
    point = OkPoint(token="abc")
    blob = encode_payload(point, key="sekrit")
    assert decode_payload(blob, key="sekrit") == point


def test_keyed_decode_rejects_tampering_before_unpickling():
    blob = encode_payload(OkPoint(token="abc"), key="sekrit")
    raw = bytearray(base64.b64decode(blob))
    raw[-1] ^= 0x01  # flip one bit of the pickled body
    tampered = base64.b64encode(bytes(raw)).decode("ascii")
    with pytest.raises(PayloadError, match="signature"):
        decode_payload(tampered, key="sekrit")
    # Unsigned and wrong-key blobs never reach pickle.loads either.
    with pytest.raises(PayloadError):
        decode_payload(encode_payload(OkPoint(token="abc")), key="sekrit")
    with pytest.raises(PayloadError):
        decode_payload(blob, key="wrong")
    with pytest.raises(PayloadError, match="too short"):
        decode_payload(base64.b64encode(b"x").decode("ascii"), key="sekrit")


def test_token_secured_fabric_round_trips(tmp_path):
    """With a token both directions sign payloads and auth is enforced."""
    coordinator = FabricCoordinator(tmp_path / "fab", token="sekrit")
    coordinator.queue.enqueue([OkPoint(token="abc")])
    client = FabricClient(InProcessTransport(coordinator.app,
                                             token="sekrit"))
    worker = FabricWorker(client, worker="w0", lease_s=5.0)
    assert worker.run_one() is True
    assert coordinator.queue.items()[0].state == ItemState.DONE
    assert coordinator.value(OkPoint(token="abc").key())["squared"] == 9


def test_wrong_token_is_rejected_with_constant_time_compare(tmp_path):
    from repro.fabric import ApiError

    coordinator = FabricCoordinator(tmp_path / "fab", token="sekrit")
    coordinator.queue.enqueue([OkPoint(token="abc")])
    client = FabricClient(InProcessTransport(coordinator.app,
                                             token="wrong"))
    with pytest.raises(ApiError) as err:
        client.lease("w0")
    assert err.value.status == 401


def test_worker_id_names_host_and_pid():
    import os
    import socket

    assert worker_id() == f"{socket.gethostname()}:{os.getpid()}"


def test_run_one_executes_and_completes(tmp_path):
    coordinator, client = make_fabric(tmp_path)
    coordinator.queue.enqueue([OkPoint(token="abc")])
    registry = MetricRegistry()
    worker = FabricWorker(client, worker="w0", lease_s=5.0,
                          registry=registry)
    assert worker.run_one() is True
    assert worker.done == 1
    item = coordinator.queue.items()[0]
    assert item.state == ItemState.DONE and item.completed_by == "w0"
    assert coordinator.value(OkPoint(token="abc").key())["squared"] == 9
    assert 'fabric_worker_points_total{status="done"} 1' \
        in to_prometheus(registry)
    assert worker.run_one() is False  # drained


def test_worker_reports_failures(tmp_path):
    coordinator, client = make_fabric(tmp_path, retries=0)
    coordinator.queue.enqueue([FailPoint(token="bad")])
    worker = FabricWorker(client, worker="w0", lease_s=5.0)
    assert worker.run_one() is True
    assert (worker.done, worker.failed) == (0, 1)
    item = coordinator.queue.items()[0]
    assert item.state == ItemState.FAILED
    assert "fail:bad" in item.error


def test_run_forever_drains_on_coordinator_shutdown(tmp_path):
    coordinator, client = make_fabric(tmp_path)
    coordinator.queue.enqueue([OkPoint(token=t) for t in ("a", "bb")])
    coordinator.draining = True  # empty queue + draining => shutdown hint
    worker = FabricWorker(client, worker="w0", lease_s=5.0, poll_s=0.01)
    done = worker.run_forever()
    assert done == 2
    assert all(i.state == ItemState.DONE for i in coordinator.queue.items())


def test_stop_is_a_graceful_drain(tmp_path):
    coordinator, client = make_fabric(tmp_path)
    worker = FabricWorker(client, worker="w0", poll_s=0.01)
    thread = threading.Thread(target=worker.run_forever, daemon=True)
    thread.start()
    worker.stop()
    thread.join(timeout=5.0)
    assert not thread.is_alive()


def test_lost_lease_result_ships_as_late_completion(tmp_path):
    coordinator, client = make_fabric(tmp_path)
    _, (item_id,) = coordinator.queue.enqueue([OkPoint(token="abc")])
    worker = FabricWorker(client, worker="w0", lease_s=5.0)
    doc = client.lease("w0", lease_s=5.0)
    # Simulate the coordinator reclaiming our lease mid-run.
    coordinator.queue._requeue(coordinator.queue.get(item_id),
                               recovered=True)
    other = client.lease("w1", lease_s=5.0)
    assert other["item"]["id"] == item_id
    worker._run_one(doc["item"], decode_payload(doc["point"]))
    item = coordinator.queue.get(item_id)
    assert item.state == ItemState.DONE
    assert item.completed_by == "w0"  # late, but accepted and stored
    assert coordinator.value(OkPoint(token="abc").key()) is not None
