"""The coordinator's point queue: leases, exactly-once, recovery."""

import json

import pytest

from repro.fabric import ItemState, PointQueue, PointQueueError
from repro.telemetry.metrics import MetricRegistry

from tests.fabric._points import OkPoint


def make_queue(tmp_path, **kwargs):
    kwargs.setdefault("lease_s", 10.0)
    kwargs.setdefault("clock", None)
    clock = kwargs.pop("clock")
    if clock is None:
        clock = [0.0]
    return PointQueue(tmp_path / "fab", clock=lambda: clock[0],
                      **kwargs), clock


def points(*tokens):
    return [OkPoint(token=t) for t in tokens]


def journal_events(queue, event=None):
    lines = queue.journal.path.read_text().splitlines()
    records = [json.loads(line) for line in lines]
    if event is not None:
        records = [r for r in records if r["event"] == event]
    return records


def test_enqueue_lease_fifo_and_complete(tmp_path):
    queue, _ = make_queue(tmp_path)
    batch, ids = queue.enqueue(points("a", "b"))
    assert ids == ["0:0", "0:1"]
    first = queue.lease("w0")
    assert first.id == "0:0" and first.state == ItemState.LEASED
    assert first.attempts == 1
    assert queue.point(first.id).token == "a"
    assert queue.complete("w0", first.id) == "done"
    assert queue.get(first.id).completed_by == "w0"
    assert queue.lease("w0").id == "0:1"
    assert queue.lease("w0") is None  # drained


def test_enqueue_dedups_by_key_across_batches(tmp_path):
    queue, _ = make_queue(tmp_path)
    _, first_ids = queue.enqueue(points("a"))
    _, second_ids = queue.enqueue(points("a", "b"))
    assert second_ids[0] == first_ids[0]  # same key attaches, no dup
    assert len(queue.items()) == 2
    assert len(journal_events(queue, "point_enqueued")) == 2


def test_heartbeat_refuses_foreign_and_unknown(tmp_path):
    queue, clock = make_queue(tmp_path)
    _, (item_id,) = queue.enqueue(points("a"))
    queue.lease("w0")
    assert queue.heartbeat("w0", item_id) is True
    assert queue.heartbeat("other", item_id) is False
    assert queue.heartbeat("w0", "9:9") is False


def test_complete_classifies_late_and_duplicate(tmp_path):
    registry = MetricRegistry()
    queue, clock = make_queue(tmp_path, registry=registry)
    _, (item_id,) = queue.enqueue(points("a"))
    queue.lease("w0")
    clock[0] = 50.0  # w0's lease lapses...
    queue.requeue_expired()
    queue.lease("w1")  # ...and w1 picks the point up
    # w0 finishes anyway: accepted as "late" (deterministic bytes,
    # already durably cached by the coordinator).
    assert queue.complete("w0", item_id) == "late"
    assert queue.complete("w1", item_id) == "duplicate"
    # Exactly one point_done no matter how many completions raced.
    assert len(journal_events(queue, "point_done")) == 1


def test_fail_retries_then_goes_terminal(tmp_path):
    queue, _ = make_queue(tmp_path, retries=1)
    _, (item_id,) = queue.enqueue(points("a"))
    queue.lease("w0")
    assert queue.fail("w0", item_id, "boom") == ItemState.PENDING
    queue.lease("w0")  # attempt 2 (the retry)
    assert queue.fail("w0", item_id, "boom again") == ItemState.FAILED
    assert queue.get(item_id).error == "boom again"
    assert len(journal_events(queue, "point_failed")) == 1


def test_fail_from_stale_worker_is_a_noop(tmp_path):
    """A late failure report from a reclaimed lease must not requeue
    (double-lease) or spuriously FAIL the new holder's live item."""
    queue, clock = make_queue(tmp_path, retries=0)
    _, (item_id,) = queue.enqueue(points("a"))
    queue.lease("w0")
    clock[0] = 50.0  # w0's lease lapses...
    queue.requeue_expired()
    queue.lease("w1")  # ...and w1 picks the point up
    assert queue.fail("w0", item_id, "late boom") == ItemState.LEASED
    item = queue.get(item_id)
    assert item.state == ItemState.LEASED and item.worker == "w1"
    assert journal_events(queue, "point_failed") == []
    # The live holder's own report still lands.
    assert queue.fail("w1", item_id, "real boom") == ItemState.FAILED
    assert queue.get(item_id).error == "real boom"


def test_fail_from_never_leased_worker_is_a_noop(tmp_path):
    queue, _ = make_queue(tmp_path)
    _, (item_id,) = queue.enqueue(points("a"))
    assert queue.fail("ghost", item_id, "boom") == ItemState.PENDING
    assert queue.get(item_id).state == ItemState.PENDING
    assert journal_events(queue, "point_requeued") == []


def test_enqueue_stamps_batch_scoped_retry_budget(tmp_path):
    """Per-batch retries travel on the items, not on shared queue state."""
    queue, _ = make_queue(tmp_path, retries=0)
    _, (item_id,) = queue.enqueue(points("a"), retries=1, timeout_s=7.5)
    item = queue.get(item_id)
    assert item.retries == 1 and item.timeout_s == 7.5
    assert item.to_dict()["timeout_s"] == 7.5  # rides the lease response
    queue.lease("w0")
    assert queue.fail("w0", item_id, "boom") == ItemState.PENDING
    queue.lease("w0")
    assert queue.fail("w0", item_id, "boom") == ItemState.FAILED
    assert queue.retries == 0  # queue default untouched


def test_requeue_expired_recovers_then_quarantines(tmp_path):
    queue, clock = make_queue(tmp_path, max_recoveries=1)
    _, (item_id,) = queue.enqueue(points("a"))
    for cycle, start in enumerate((0.0, 100.0)):
        clock[0] = start
        queue.lease(f"dead-{cycle}")
        clock[0] = start + 50.0
        touched = queue.requeue_expired()
        assert [i.id for i in touched] == [item_id]
    item = queue.get(item_id)
    assert item.state == ItemState.FAILED  # poison after 2nd recovery
    assert "dead-worker recoveries" in item.error


def test_requeue_expired_skip_workers(tmp_path):
    queue, clock = make_queue(tmp_path)
    _, (item_id,) = queue.enqueue(points("a"))
    queue.lease("local")
    clock[0] = 50.0
    assert queue.requeue_expired(skip_workers=frozenset({"local"})) == []
    assert queue.get(item_id).state == ItemState.LEASED


def test_mid_sweep_heartbeat_rescues_item(tmp_path):
    """Fabric-side TOCTOU regression: a heartbeat that lands while the
    sweep is reclaiming an *earlier* item rescues the later one."""
    queue, clock = make_queue(tmp_path)
    _, (first, second) = queue.enqueue(points("a", "b"))
    queue.lease("w-first")
    queue.lease("w-second")
    clock[0] = 50.0  # both lapsed

    original_append = queue.journal.append
    state = {"fired": False}

    def slow_append(event, **fields):
        original_append(event, **fields)
        if event == "point_requeued" and not state["fired"]:
            state["fired"] = True
            # Deliberately slow sweep: w-second's heartbeat arrives
            # during the first reclaim's journal write (RLock allows
            # the same-thread reentry the HTTP thread would do).
            queue.heartbeat("w-second", second)

    queue.journal.append = slow_append
    touched = queue.requeue_expired()
    assert [i.id for i in touched] == [first]
    assert queue.get(second).state == ItemState.LEASED
    assert queue.get(second).worker == "w-second"


def test_unknown_item_raises(tmp_path):
    queue, _ = make_queue(tmp_path)
    with pytest.raises(PointQueueError, match="unknown item"):
        queue.get("9:9")
    with pytest.raises(PointQueueError, match="unknown item"):
        queue.point("9:9")


def test_snapshot_counts_states_and_workers(tmp_path):
    queue, clock = make_queue(tmp_path)
    _, (a, b) = queue.enqueue(points("a", "b"))
    queue.lease("w0")
    queue.complete("w0", a)
    snap = queue.snapshot()
    assert snap["items"] == 2
    assert snap["states"][ItemState.DONE] == 1
    assert snap["states"][ItemState.PENDING] == 1
    assert "w0" in snap["workers"]


def test_fabric_metrics_track_protocol(tmp_path):
    registry = MetricRegistry()
    queue, clock = make_queue(tmp_path, registry=registry)
    _, (a, b) = queue.enqueue(points("a", "b"))
    queue.lease("w0")
    queue.heartbeat("w0", a)
    queue.complete("w0", a)
    from repro.telemetry import to_prometheus

    text = to_prometheus(registry)
    assert "fabric_leases_total 1" in text
    assert "fabric_heartbeats_total 1" in text
    assert 'fabric_completions_total{status="done"} 1' in text
    assert "fabric_queue_depth 1" in text
