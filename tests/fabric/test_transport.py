"""The shared transport: error hierarchy, retry policy, both dialects."""

import json

import pytest

from repro.fabric.transport import (
    ApiError,
    HttpTransport,
    InProcessTransport,
    ServiceError,
    TransportError,
    serve_app_in_thread,
)


class EchoApp:
    """Counts requests; scripted status codes per path."""

    def __init__(self):
        self.calls = []

    def handle(self, method, path, headers=None, body=None):
        self.calls.append((method, path))
        if path == "/boom":
            payload = {"error": {"code": "kaput", "message": "no such"}}
            return 404, "application/json", json.dumps(payload).encode()
        if path == "/flaky":
            payload = {"error": {"code": "internal", "message": "oops"}}
            return 500, "application/json", json.dumps(payload).encode()
        doc = {"method": method, "path": path,
               "auth": (headers or {}).get("Authorization"),
               "body": (body or b"").decode() or None}
        return 200, "application/json", json.dumps(doc).encode()


def test_error_hierarchy_is_typed_and_unified():
    assert issubclass(ApiError, ServiceError)
    assert issubclass(TransportError, ServiceError)
    assert issubclass(ServiceError, RuntimeError)
    err = ApiError(404, "unknown_job", "no job j123")
    assert (err.status, err.code) == (404, "unknown_job")
    assert str(err) == "[404 unknown_job] no job j123"


def test_in_process_round_trip_with_token():
    app = EchoApp()
    transport = InProcessTransport(app, token="sekrit")
    doc = transport.json("POST", "/v1/thing", {"a": 1})
    assert doc["method"] == "POST"
    assert doc["auth"] == "Bearer sekrit"
    assert json.loads(doc["body"]) == {"a": 1}


def test_in_process_non_2xx_raises_api_error():
    transport = InProcessTransport(EchoApp())
    with pytest.raises(ApiError) as err:
        transport.json("GET", "/boom")
    assert err.value.status == 404 and err.value.code == "kaput"


def test_http_round_trip_over_real_socket():
    app = EchoApp()
    server, thread, url = serve_app_in_thread(app.handle)
    try:
        transport = HttpTransport(url, token="t0", timeout_s=5.0)
        doc = transport.json("GET", "/v1/ping")
        assert doc["path"] == "/v1/ping" and doc["auth"] == "Bearer t0"
    finally:
        server.shutdown()
        server.server_close()


def test_http_response_is_never_retried():
    """Retry policy: any HTTP *response* (even 5xx) is final; only
    requests that produced no response at all are retried."""
    app = EchoApp()
    server, thread, url = serve_app_in_thread(app.handle)
    try:
        transport = HttpTransport(url, retries=3, backoff_s=0.0)
        with pytest.raises(ApiError) as err:
            transport.json("GET", "/flaky")
        assert err.value.status == 500
        assert app.calls.count(("GET", "/flaky")) == 1
    finally:
        server.shutdown()
        server.server_close()


def test_connection_failure_raises_transport_error():
    # Bind-then-close guarantees nothing listens on the port.
    server, thread, url = serve_app_in_thread(EchoApp().handle)
    server.shutdown()
    server.server_close()
    transport = HttpTransport(url, retries=1, backoff_s=0.0, timeout_s=0.5)
    with pytest.raises(TransportError):
        transport.json("GET", "/v1/ping")


def test_service_error_catches_both():
    transport = InProcessTransport(EchoApp())
    with pytest.raises(ServiceError):
        transport.json("GET", "/boom")
