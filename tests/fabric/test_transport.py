"""The shared transport: error hierarchy, retry policy, both dialects."""

import json

import pytest

from repro.fabric.transport import (
    ApiError,
    HttpTransport,
    InProcessTransport,
    ServiceError,
    TransportError,
    serve_app_in_thread,
)


class EchoApp:
    """Counts requests; scripted status codes per path."""

    def __init__(self):
        self.calls = []

    def handle(self, method, path, headers=None, body=None):
        self.calls.append((method, path))
        if path == "/boom":
            payload = {"error": {"code": "kaput", "message": "no such"}}
            return 404, "application/json", json.dumps(payload).encode()
        if path == "/flaky":
            payload = {"error": {"code": "internal", "message": "oops"}}
            return 500, "application/json", json.dumps(payload).encode()
        doc = {"method": method, "path": path,
               "auth": (headers or {}).get("Authorization"),
               "body": (body or b"").decode() or None}
        return 200, "application/json", json.dumps(doc).encode()


def test_error_hierarchy_is_typed_and_unified():
    assert issubclass(ApiError, ServiceError)
    assert issubclass(TransportError, ServiceError)
    assert issubclass(ServiceError, RuntimeError)
    err = ApiError(404, "unknown_job", "no job j123")
    assert (err.status, err.code) == (404, "unknown_job")
    assert str(err) == "[404 unknown_job] no job j123"


def test_in_process_round_trip_with_token():
    app = EchoApp()
    transport = InProcessTransport(app, token="sekrit")
    doc = transport.json("POST", "/v1/thing", {"a": 1})
    assert doc["method"] == "POST"
    assert doc["auth"] == "Bearer sekrit"
    assert json.loads(doc["body"]) == {"a": 1}


def test_in_process_non_2xx_raises_api_error():
    transport = InProcessTransport(EchoApp())
    with pytest.raises(ApiError) as err:
        transport.json("GET", "/boom")
    assert err.value.status == 404 and err.value.code == "kaput"


def test_http_round_trip_over_real_socket():
    app = EchoApp()
    server, thread, url = serve_app_in_thread(app.handle)
    try:
        transport = HttpTransport(url, token="t0", timeout_s=5.0)
        doc = transport.json("GET", "/v1/ping")
        assert doc["path"] == "/v1/ping" and doc["auth"] == "Bearer t0"
    finally:
        server.shutdown()
        server.server_close()


def test_http_response_is_never_retried():
    """Retry policy: any HTTP *response* (even 5xx) is final; only
    requests that produced no response at all are retried."""
    app = EchoApp()
    server, thread, url = serve_app_in_thread(app.handle)
    try:
        transport = HttpTransport(url, retries=3, backoff_s=0.0)
        with pytest.raises(ApiError) as err:
            transport.json("GET", "/flaky")
        assert err.value.status == 500
        assert app.calls.count(("GET", "/flaky")) == 1
    finally:
        server.shutdown()
        server.server_close()


def test_connection_retry_is_limited_to_idempotent_requests():
    """A dropped connection cannot prove the server didn't execute the
    request, so only GETs (and POSTs explicitly marked replay-safe,
    like the fabric protocol routes) are retried."""
    import socket
    import threading

    listener = socket.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(16)
    accepted = []

    def drop_loop():
        while True:
            try:
                conn, _ = listener.accept()
            except OSError:
                return
            accepted.append(1)
            conn.close()  # accepted, then dropped before any response

    thread = threading.Thread(target=drop_loop, daemon=True)
    thread.start()
    url = f"http://127.0.0.1:{listener.getsockname()[1]}"
    transport = HttpTransport(url, retries=2, backoff_s=0.0, timeout_s=2.0)
    try:
        with pytest.raises(TransportError):
            transport.json("POST", "/v1/jobs", {"experiment": "E1"})
        post_attempts = len(accepted)
        with pytest.raises(TransportError):
            transport.json("GET", "/v1/jobs")
        get_attempts = len(accepted) - post_attempts
        with pytest.raises(TransportError):
            transport.json("POST", "/v1/fabric/heartbeat",
                           {"worker": "w0", "id": "0:0"}, idempotent=True)
        marked_attempts = len(accepted) - post_attempts - get_attempts
    finally:
        listener.close()
    assert post_attempts == 1      # non-idempotent: never replayed
    assert get_attempts == 3       # GET: retries + 1
    assert marked_attempts == 3    # replay-safe POST: retries + 1


def test_connection_failure_raises_transport_error():
    # Bind-then-close guarantees nothing listens on the port.
    server, thread, url = serve_app_in_thread(EchoApp().handle)
    server.shutdown()
    server.server_close()
    transport = HttpTransport(url, retries=1, backoff_s=0.0, timeout_s=0.5)
    with pytest.raises(TransportError):
        transport.json("GET", "/v1/ping")


def test_service_error_catches_both():
    transport = InProcessTransport(EchoApp())
    with pytest.raises(ServiceError):
        transport.json("GET", "/boom")
