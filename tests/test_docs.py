"""Guardrails against documentation drift."""

from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def readme():
    return (ROOT / "README.md").read_text()


@pytest.fixture(scope="module")
def design():
    return (ROOT / "DESIGN.md").read_text()


def test_core_docs_exist():
    for name in ("README.md", "DESIGN.md"):
        assert (ROOT / name).exists(), name


def test_readme_mentions_all_packages(readme):
    for pkg in ("repro.sim", "repro.cluster", "repro.mpi", "repro.horovod",
                "repro.models", "repro.train", "repro.npnn", "repro.core",
                "repro.bench", "repro.data", "repro.faults",
                "repro.telemetry", "repro.trace"):
        assert pkg in readme, pkg


def test_readme_headline_numbers(readme):
    for anchor in ("6.7", "300", "92%", "1.3", "80.8"):
        assert anchor in readme, anchor


def test_design_lists_every_bench_target(design):
    bench_dir = ROOT / "benchmarks"
    for path in bench_dir.glob("test_e*.py"):
        assert path.name in design, path.name


def test_design_experiment_ids_have_drivers(design):
    from repro.bench import experiments

    for exp_id in ("E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9",
                   "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17"):
        assert f"| {exp_id} |" in design, exp_id
    for fn in ("e1_single_gpu_throughput", "e13_degraded_rail",
               "e14_efficiency_attribution", "e16_critical_path",
               "e17_fastpath_speedup"):
        assert hasattr(experiments, fn)


def test_examples_referenced_exist(readme):
    examples = ROOT / "examples"
    assert (examples / "quickstart.py").exists()
    for line in readme.splitlines():
        if "examples/" in line and ".py" in line:
            name = line.split("examples/")[1].split(".py")[0] + ".py"
            assert (examples / name).exists(), name


def test_cli_registry_matches_design(design):
    from repro.__main__ import EXPERIMENTS

    for exp_id in EXPERIMENTS:
        base = exp_id.rstrip("b")
        assert f"| {base} |" in design or f"| {exp_id} |" in design, exp_id
