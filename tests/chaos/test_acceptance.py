"""The PR's acceptance gate: all three fault planes at once.

A seeded :class:`ChaosSchedule` drives transport flaps (drops and
injected 503s at every worker), one ENOSPC episode on the disk under
the coordinator's journal + result cache, and one worker SIGKILL —
concurrently, against a 50-point fabric sweep.  The sweep must finish
with results byte-identical to a fault-free serial run, the
coordinator's health must pass through ``degraded`` and come back to
``ok``, and the lease journal must never double a completion.
"""

import json
import multiprocessing
import pickle
import threading
import time

import pytest

from repro.chaos import (
    ChaosFS,
    ChaosSchedule,
    ChaosTransport,
    DiskFull,
    ProcessChaos,
    TransportFlap,
    WorkerKill,
    kill_pid,
)
from repro.fabric import FabricRunner, HttpTransport, ItemState
from repro.fabric.health import Health
from repro.runner import Runner
from repro.runner.cache import ResultCache

from tests.fabric._points import OkPoint

SEED = 20260807

#: One schedule, shared (by value) between the coordinator harness and
#: every worker process — the whole run replays from this + SEED.
SCHEDULE = ChaosSchedule.of(
    # Transport plane: a drop storm and a 503 burst at each worker's
    # request stream (each worker counts its own ops).
    TransportFlap(start_op=4, count=6, probability=0.6, mode="drop"),
    TransportFlap(start_op=20, count=5, probability=0.5, mode="error",
                  status=503),
    # Filesystem plane: an ENOSPC episode mid-sweep, after the 50
    # enqueue appends — it lands on lease grants, result-cache puts
    # and/or completion records, whichever the interleaving reaches.
    DiskFull(start_op=60, count=6),
    # Process plane: SIGKILL whichever worker holds a lease once five
    # points have completed.
    WorkerKill(after_done=5),
    seed=SEED,
)


def _worker_main(url: str, name: str, schedule_json: str) -> None:
    """Child body: a pull worker whose transport flaps per schedule."""
    from repro.fabric import FabricClient, FabricWorker

    schedule = ChaosSchedule.from_json(schedule_json)
    transport = ChaosTransport(
        HttpTransport(url, timeout_s=10.0, retries=2), schedule)
    FabricWorker(FabricClient(transport), worker=name, poll_s=0.02,
                 lease_s=1.0, lease_error_limit=10).run_forever()


@pytest.fixture(autouse=True)
def _obs_sandbox():
    """A fresh emitter per run, with no ``REPRO_OBS*`` leakage."""
    import os

    from repro.obs import reset_emitter

    saved = {key: os.environ.pop(key, None)
             for key in ("REPRO_OBS", "REPRO_OBS_DIR")}
    reset_emitter()
    try:
        yield
    finally:
        reset_emitter()
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


@pytest.mark.chaos
def test_three_plane_chaos_sweep_is_byte_identical(tmp_path):
    from repro.obs import configure

    # Every process in the run (this harness, which hosts the
    # coordinator, and the forked workers) logs obs events here — the
    # evidence the observability gate at the bottom greps.
    obs_dir = tmp_path / "obs"
    configure(obs_dir)

    points = [OkPoint(token=f"pt{i:02d}", delay_s=0.02) for i in range(50)]
    serial = Runner(workers=0).run(list(points))

    chaos_fs = ChaosFS(SCHEDULE)
    fabric = FabricRunner(workers=3, spawn=None,
                          state_dir=tmp_path / "fab",
                          lease_s=1.0, poll_s=0.02, fs=chaos_fs)
    # The shared result cache sits on the same faulty disk and shares
    # the coordinator's health, so an ENOSPC on either surface shows
    # on /v1/fabric/healthz.
    health = fabric.coordinator.queue.health
    fabric.coordinator.cache = ResultCache(
        directory=tmp_path / "cache", fs=chaos_fs, health=health)

    health_states = set()
    real_degrade = health.degrade

    def recording_degrade(key, detail):
        health_states.add(Health.DEGRADED)
        real_degrade(key, detail)

    health.degrade = recording_degrade

    url = fabric.start()
    ctx = multiprocessing.get_context("fork")
    procs = {}
    for i in range(3):
        name = f"chaos:{i}"
        proc = ctx.Process(target=_worker_main,
                           args=(url, name, SCHEDULE.to_json()),
                           daemon=True)
        proc.start()
        procs[name] = proc

    def pick_leased_worker():
        for item in fabric.coordinator.queue.items():
            if item.state == ItemState.LEASED and item.worker in procs:
                if procs[item.worker].is_alive():
                    return item.worker
        return None

    process_chaos = ProcessChaos(
        SCHEDULE,
        kill=lambda name: (name is not None
                           and kill_pid(procs[name].pid)))

    results = {}
    driver = threading.Thread(
        target=lambda: results.update(values=fabric.run(list(points))),
        daemon=True)
    driver.start()

    deadline = time.monotonic() + 120.0
    while driver.is_alive() and time.monotonic() < deadline:
        done = sum(1 for item in fabric.coordinator.queue.items()
                   if item.state == ItemState.DONE)
        process_chaos.poll(done, pick=pick_leased_worker)
        time.sleep(0.02)
    driver.join(timeout=1.0)
    assert not driver.is_alive(), "sweep did not survive the chaos run"

    # Every scheduled fault actually landed.
    assert chaos_fs.injected >= 1, "the ENOSPC episode never fired"
    assert process_chaos.done, "the SIGKILL never fired"
    assert any(not proc.is_alive() for proc in procs.values()), \
        "no worker process actually died"

    # Degraded was entered... and left: the endpoint reports ok again.
    assert Health.DEGRADED in health_states
    doc = HttpTransport(url, timeout_s=10.0).json(
        "GET", "/v1/fabric/healthz")
    assert doc["status"] == "ok"
    assert doc["health"]["reasons"] == {}

    # Byte-identical to the fault-free serial run, point for point.
    assert [pickle.dumps(v) for v in results["values"]] == \
        [pickle.dumps(v) for v in serial]

    # The audit journal may have lost appends to ENOSPC (that is the
    # degrade-and-proceed contract) but must never double a completion.
    journal = tmp_path / "fab" / "fabric.jsonl"
    events = [json.loads(line)
              for line in journal.read_text().splitlines()]
    done_ids = [e["id"] for e in events if e["event"] == "point_done"]
    assert len(done_ids) == len(set(done_ids))

    fabric.close()
    for proc in procs.values():
        proc.join(timeout=10.0)

    # Observability gate: every fault plane that fired announced
    # itself on the event log as a correlated ``chaos_injected``
    # record — each traceable by a non-empty request_id (the one the
    # enclosing request had bound, or one minted at injection time).
    from repro.obs import emitter

    emitter().close()
    records = []
    for path in sorted(obs_dir.glob("events-*.jsonl")):
        for line in path.read_text().splitlines():
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                continue
    injected = [r for r in records if r.get("event") == "chaos_injected"]
    assert {r.get("plane") for r in injected} >= \
        {"transport", "fs", "process"}
    assert all((r.get("ctx") or {}).get("request_id") for r in injected)
    # Entering DEGRADED also dumped the flight recorder next to the log.
    assert (obs_dir / "flight-recorder.jsonl").exists()
