"""Transport fault plane + circuit breaker + capped jittered backoff."""

import json

import pytest

from repro.chaos import ChaosSchedule, ChaosTransport, TransportFlap
from repro.fabric.breaker import CircuitBreaker, CircuitOpenError
from repro.fabric.transport import (
    ApiError,
    HttpTransport,
    InProcessTransport,
    TransportError,
)


class _EchoApp:
    """Minimal pure app: counts calls, returns a fixed status."""

    def __init__(self, status: int = 200):
        self.status = status
        self.calls = 0

    def handle(self, method, path, headers=None, body=None):
        self.calls += 1
        return (self.status, "application/json",
                json.dumps({"ok": True, "call": self.calls}).encode())


class _FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


# -- ChaosTransport ---------------------------------------------------------

def _chaos(app, schedule, sleeps=None):
    inner = InProcessTransport(app)
    return ChaosTransport(
        inner, schedule,
        sleep=(sleeps.append if sleeps is not None else lambda s: None))


def test_drop_mode_raises_transport_error_without_forwarding():
    app = _EchoApp()
    transport = _chaos(app, ChaosSchedule.of(
        TransportFlap(start_op=1, count=2, mode="drop")))
    assert transport.json("GET", "/x")["call"] == 1
    for _ in range(2):
        with pytest.raises(TransportError, match="chaos: dropped"):
            transport.json("GET", "/x")
    assert transport.json("GET", "/x")["call"] == 2
    assert app.calls == 2  # dropped requests never reached the app
    assert transport.injected == 2


def test_error_mode_synthesizes_5xx_envelope():
    app = _EchoApp()
    transport = _chaos(app, ChaosSchedule.of(
        TransportFlap(start_op=0, count=1, mode="error", status=503)))
    with pytest.raises(ApiError) as err:
        transport.json("GET", "/x")
    assert err.value.status == 503
    assert err.value.code == "chaos"
    assert app.calls == 0


def test_delay_mode_sleeps_then_forwards():
    app = _EchoApp()
    sleeps = []
    transport = _chaos(app, ChaosSchedule.of(
        TransportFlap(start_op=0, count=1, mode="delay", delay_s=0.25)),
        sleeps=sleeps)
    assert transport.json("GET", "/x")["ok"] is True
    assert sleeps == [0.25]
    assert app.calls == 1


def test_probabilistic_flaps_replay_exactly():
    schedule = ChaosSchedule.of(
        TransportFlap(start_op=0, count=40, probability=0.5, mode="drop"),
        seed=1234)

    def run():
        transport = _chaos(_EchoApp(), schedule)
        pattern = []
        for _ in range(40):
            try:
                transport.json("GET", "/x")
                pattern.append("ok")
            except TransportError:
                pattern.append("drop")
        return pattern

    first = run()
    assert run() == first
    assert 5 < first.count("drop") < 35  # actually probabilistic


def test_one_draw_per_op_isolates_windows():
    """Adding a window over other ops must not shift this window's
    drops — the one-draw-per-op contract."""
    base = ChaosSchedule.of(
        TransportFlap(start_op=10, count=10, probability=0.5, mode="drop"),
        seed=99)
    widened = ChaosSchedule.of(
        TransportFlap(start_op=0, count=5, mode="delay", delay_s=0.0),
        TransportFlap(start_op=10, count=10, probability=0.5, mode="drop"),
        seed=99)

    def drops(schedule):
        transport = _chaos(_EchoApp(), schedule)
        out = []
        for op in range(20):
            try:
                transport.json("GET", "/x")
            except TransportError:
                out.append(op)
        return out

    assert drops(base) == drops(widened)


# -- CircuitBreaker ---------------------------------------------------------

def test_breaker_trips_opens_probes_and_closes():
    clock = _FakeClock()
    breaker = CircuitBreaker(failures=3, backoff_s=1.0, max_backoff_s=8.0,
                             clock=clock)
    assert breaker.state == CircuitBreaker.CLOSED
    for _ in range(3):
        breaker.allow()
        breaker.record_failure()
    assert breaker.state == CircuitBreaker.OPEN
    with pytest.raises(CircuitOpenError) as err:
        breaker.allow()
    assert err.value.retry_after == pytest.approx(1.0)

    clock.now = 1.5  # past the window: one probe allowed...
    breaker.allow()
    assert breaker.state == CircuitBreaker.HALF_OPEN
    with pytest.raises(CircuitOpenError):
        breaker.allow()  # ...concurrent callers still rejected
    breaker.record_success()
    assert breaker.state == CircuitBreaker.CLOSED


def test_breaker_backoff_doubles_and_caps():
    clock = _FakeClock()
    breaker = CircuitBreaker(failures=1, backoff_s=1.0, max_backoff_s=4.0,
                             clock=clock)
    windows = []
    for _ in range(5):
        breaker.record_failure()  # trip (first) / failed probe (rest)
        windows.append(breaker.as_dict()["retry_after"])
        clock.now += windows[-1] + 0.01
        breaker.allow()           # promote to the half-open probe
    assert windows == [pytest.approx(w) for w in (1.0, 2.0, 4.0, 4.0, 4.0)]
    breaker.record_success()      # a good probe resets the ladder
    breaker.record_failure()
    assert breaker.as_dict()["retry_after"] == pytest.approx(1.0)


def test_transport_feeds_breaker_5xx_and_4xx():
    clock = _FakeClock()
    breaker = CircuitBreaker(failures=2, backoff_s=1.0, clock=clock)
    app = _EchoApp(status=503)
    transport = InProcessTransport(app, breaker=breaker)
    for _ in range(2):
        with pytest.raises(ApiError):
            transport.json("GET", "/x")
    # Tripped: the next call is rejected locally, no dispatch.
    calls = app.calls
    with pytest.raises(CircuitOpenError):
        transport.json("GET", "/x")
    assert app.calls == calls

    # A 4xx is a *working* server: the probe closes the breaker.
    clock.now = 2.0
    app.status = 404
    with pytest.raises(ApiError):
        transport.json("GET", "/x")
    assert breaker.state == CircuitBreaker.CLOSED


# -- HttpTransport backoff --------------------------------------------------

def test_retry_backoff_is_capped_and_jittered():
    transport = HttpTransport("http://127.0.0.1:1", retries=8,
                              backoff_s=0.1, max_backoff_s=2.0,
                              jitter_seed=0)
    sleeps = [transport._sleep_s(attempt) for attempt in range(9)]
    for attempt, sleep_s in enumerate(sleeps):
        base = min(0.1 * (2 ** attempt), 2.0)
        assert 0.5 * base <= sleep_s <= base
    assert max(sleeps) <= 2.0
    # Deterministic replay from the seed.
    again = HttpTransport("http://127.0.0.1:1", retries=8, backoff_s=0.1,
                          max_backoff_s=2.0, jitter_seed=0)
    assert [again._sleep_s(a) for a in range(9)] == sleeps
    # Distinct seeds desynchronize a fleet.
    other = HttpTransport("http://127.0.0.1:1", retries=8, backoff_s=0.1,
                          max_backoff_s=2.0, jitter_seed=1)
    assert [other._sleep_s(a) for a in range(9)] != sleeps
