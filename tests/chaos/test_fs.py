"""Filesystem fault plane: ChaosFS against the cache and the journal."""

import errno
import json

import pytest

from repro.chaos import ChaosFS, ChaosSchedule, DiskError, DiskFull, TornWrite
from repro.fabric.health import Health
from repro.runner.cache import MEMORY_FALLBACK_ENTRIES, ResultCache
from repro.runner.journal import RunJournal
from repro.telemetry.metrics import MetricRegistry

KEY_A = "a" * 16
KEY_B = "b" * 16


def test_only_write_opens_count_and_fault(tmp_path):
    fs = ChaosFS(ChaosSchedule.of(DiskFull(start_op=1)))
    target = tmp_path / "x.txt"
    with fs.open(target, "w", encoding="utf-8") as handle:  # op 0: fine
        handle.write("hello")
    with fs.open(target, "r", encoding="utf-8") as handle:  # read: uncounted
        assert handle.read() == "hello"
    with pytest.raises(OSError) as err:                     # op 1: ENOSPC
        fs.open(target, "a", encoding="utf-8")
    assert err.value.errno == errno.ENOSPC
    assert fs.write_ops == 2
    assert fs.injected == 1


def test_disk_error_raises_eio(tmp_path):
    fs = ChaosFS(ChaosSchedule.of(DiskError(start_op=0)))
    with pytest.raises(OSError) as err:
        fs.open(tmp_path / "y.txt", "w", encoding="utf-8")
    assert err.value.errno == errno.EIO


def test_torn_write_persists_prefix_then_fails(tmp_path):
    fs = ChaosFS(ChaosSchedule.of(TornWrite(at_op=0, keep_bytes=4)))
    target = tmp_path / "torn.txt"
    handle = fs.open(target, "w", encoding="utf-8")
    with pytest.raises(OSError):
        handle.write("0123456789")
    handle.close()
    assert target.read_text(encoding="utf-8") == "0123"


def test_cache_put_degrades_to_memory_and_recovers(tmp_path):
    registry = MetricRegistry()
    health = Health(registry=registry, component="service")
    fs = ChaosFS(ChaosSchedule.of(DiskFull(start_op=0, count=1)))
    cache = ResultCache(directory=tmp_path / "cache", fs=fs,
                        registry=registry, health=health)

    # Op 0 (the first put's temp-file open) hits ENOSPC: no crash, the
    # value parks in memory, accounting and health reflect it.
    cache.put(KEY_A, {"v": 1})
    assert cache.stats.put_errors == 1
    assert health.state == Health.DEGRADED
    assert not list((tmp_path / "cache").glob("*.pkl"))
    # The sweep in flight still deduplicates: the miss path consults
    # the fallback, and it counts as a hit.
    assert cache.get(KEY_A) == {"v": 1}
    assert cache.stats.hits == 1

    # The next put lands on disk and resolves the degradation.
    cache.put(KEY_B, {"v": 2})
    assert health.state == Health.HEALTHY
    assert cache.stats.stores == 1
    assert cache.get(KEY_B) == {"v": 2}
    # Snapshot/metrics expose the error count.
    assert cache.snapshot()["put_errors"] == 1


def test_cache_memory_fallback_is_bounded(tmp_path):
    n = MEMORY_FALLBACK_ENTRIES + 10
    fs = ChaosFS(ChaosSchedule.of(DiskFull(start_op=0, count=n)))
    cache = ResultCache(directory=tmp_path / "cache", fs=fs)
    keys = [f"{i:016x}" for i in range(n)]
    for i, key in enumerate(keys):
        cache.put(key, i)
    assert cache.stats.put_errors == n
    assert len(cache._memory) == MEMORY_FALLBACK_ENTRIES
    # Oldest parked values were dropped; the newest survive.
    assert cache.get(keys[0]) is None
    assert cache.get(keys[-1]) == n - 1


def test_journal_append_failure_propagates(tmp_path):
    fs = ChaosFS(ChaosSchedule.of(DiskFull(start_op=0)))
    journal = RunJournal(tmp_path / "j.jsonl", fs=fs)
    with pytest.raises(OSError):
        journal.append("experiment_done", experiment="E1")
    # The failure wrote nothing; the next append lands cleanly.
    journal.append("experiment_done", experiment="E2")
    assert [e["experiment"] for e in journal.events()] == ["E2"]


def test_journal_drops_torn_tail_on_read(tmp_path):
    fs = ChaosFS(ChaosSchedule.of(TornWrite(at_op=1, keep_bytes=9)))
    journal = RunJournal(tmp_path / "j.jsonl", fs=fs)
    journal.append("experiment_done", experiment="E1")   # op 0: fine
    with pytest.raises(OSError):
        journal.append("experiment_done", experiment="E2")  # op 1: torn
    # The torn prefix really reached the file...
    raw = (tmp_path / "j.jsonl").read_text(encoding="utf-8")
    assert len(raw.splitlines()) == 2
    with pytest.raises(json.JSONDecodeError):
        json.loads(raw.splitlines()[-1])
    # ...and the reader heals by dropping it.
    events = journal.events()
    assert [e["experiment"] for e in events] == ["E1"]


def test_chaos_fs_replays_identically(tmp_path):
    """Same schedule -> same faults on the same ops, run after run."""
    schedule = ChaosSchedule.of(DiskFull(start_op=2, count=2),
                                TornWrite(at_op=6, keep_bytes=3))

    def run(root):
        fs = ChaosFS(schedule)
        outcomes = []
        for i in range(8):
            try:
                with fs.open(root / f"f{i}", "w", encoding="utf-8") as fh:
                    fh.write("payload")
                outcomes.append("ok")
            except OSError as err:
                outcomes.append(errno.errorcode.get(err.errno, "?"))
        return outcomes

    (tmp_path / "a").mkdir()
    (tmp_path / "b").mkdir()
    first = run(tmp_path / "a")
    assert run(tmp_path / "b") == first
    assert first == ["ok", "ok", "ENOSPC", "ENOSPC", "ok", "ok",
                     "EIO", "ok"]
