"""Graceful degradation: backpressure, Retry-After, health transitions."""

import json

import pytest

from repro.chaos import ChaosFS, ChaosSchedule, DiskFull
from repro.fabric import FabricCoordinator, ItemState, PointQueue
from repro.fabric.health import Health
from repro.fabric.transport import ApiError, InProcessTransport
from repro.service import Service, ServiceClient, ServiceConfig

from tests.fabric._points import OkPoint


@pytest.fixture
def service(tmp_path):
    svc = Service(ServiceConfig(state_dir=tmp_path / "svc",
                                max_queue_depth=3, retry_after_s=2.5))
    # The scheduler stays stopped: submitted jobs pile up SUBMITTED,
    # which is exactly what backpressure tests need.
    yield svc


def _points_payload(i: int) -> list[dict]:
    return [{"kind": "train", "gpus": 2 + i, "iterations": 2}]


def test_overload_burst_sheds_503_with_retry_after(service):
    client = ServiceClient(app=service.app)
    for i in range(3):
        client.submit(points=_points_payload(i))
    assert service.queue.depth() == 3

    # At the watermark: the burst is shed, the queue does not grow.
    for i in range(5):
        with pytest.raises(ApiError) as err:
            client.submit(points=_points_payload(100 + i))
        assert err.value.status == 503
        assert err.value.code == "overloaded"
        assert err.value.retry_after == pytest.approx(2.5)
    assert service.queue.depth() == 3

    # 503 is a node condition, not a quota: other routes still work.
    assert client.healthz()["queue_depth"] == 3


def test_retry_after_travels_as_a_real_http_header(service):
    response = service.app.handle(
        "POST", "/v1/jobs", {},
        json.dumps({"points": _points_payload(0)}).encode())
    assert len(response) == 3 and response[0] == 201  # no extra headers
    for i in range(1, 3):
        service.app.handle("POST", "/v1/jobs", {}, json.dumps(
            {"points": _points_payload(i)}).encode())
    response = service.app.handle("POST", "/v1/jobs", {}, json.dumps(
        {"points": _points_payload(9)}).encode())
    assert response[0] == 503
    assert response[3] == {"Retry-After": "2.5"}
    assert json.loads(response[2])["error"]["retry_after"] == 2.5


def test_quota_429_carries_retry_after(tmp_path):
    svc = Service(ServiceConfig(state_dir=tmp_path / "svc",
                                max_active_jobs=1, retry_after_s=0.75))
    client = ServiceClient(app=svc.app)
    client.submit(points=_points_payload(0))
    with pytest.raises(ApiError) as err:
        client.submit(points=_points_payload(1))
    assert err.value.status == 429
    assert err.value.code == "quota_exceeded"
    assert err.value.retry_after == pytest.approx(0.75)


def test_client_busy_retries_honor_retry_after(monkeypatch):
    """submit(busy_retries=N) sleeps the server's hint and re-submits."""

    class _BusyOnceApp:
        def __init__(self):
            self.calls = 0

        def handle(self, method, path, headers=None, body=None):
            self.calls += 1
            if self.calls == 1:
                return (503, "application/json", json.dumps({
                    "error": {"code": "overloaded", "message": "busy",
                              "retry_after": 0.125}}).encode(),
                    {"Retry-After": "0.125"})
            return (201, "application/json",
                    json.dumps({"job": {"id": "j1"}}).encode())

    slept = []
    monkeypatch.setattr("repro.service.client.time.sleep", slept.append)
    app = _BusyOnceApp()
    client = ServiceClient(app=app)
    job = client.submit(points=_points_payload(0), busy_retries=2)
    assert job["id"] == "j1"
    assert app.calls == 2
    assert slept == [0.125]

    # Without the retry budget the 503 surfaces immediately.
    with pytest.raises(ApiError):
        ServiceClient(app=_AlwaysBusy()).submit(
            points=_points_payload(0), busy_retries=0)


class _AlwaysBusy:
    def handle(self, method, path, headers=None, body=None):
        return (503, "application/json", json.dumps({
            "error": {"code": "overloaded", "message": "busy"}}).encode())


def test_service_journal_failure_degrades_then_recovers(tmp_path):
    # Write op 0 is the first submission's journal append.
    fs = ChaosFS(ChaosSchedule.of(DiskFull(start_op=0, count=1)))
    svc = Service(ServiceConfig(state_dir=tmp_path / "svc",
                                retry_after_s=1.5), fs=fs)
    client = ServiceClient(app=svc.app)

    with pytest.raises(ApiError) as err:
        client.submit(points=_points_payload(0))
    assert err.value.status == 503
    assert err.value.code == "degraded"
    assert err.value.retry_after == pytest.approx(1.5)
    # The transition did not happen: the queue holds nothing.
    assert svc.queue.depth() == 0
    assert client.healthz()["status"] == "degraded"
    assert "journal" in client.healthz()["health"]["reasons"]

    # Disk recovered: the next submission lands and heals the state.
    job = client.submit(points=_points_payload(1))
    assert job["id"]
    assert svc.queue.depth() == 1
    assert client.healthz()["status"] == "ok"
    assert client.healthz()["health"]["reasons"] == {}


def test_injected_fault_and_health_flip_share_a_request_id(tmp_path):
    """The chaos-to-postmortem thread: the ``chaos_injected`` event and
    the ``health_flip`` it caused carry the same bound ``request_id``,
    because both fire inside the request whose journal append died."""
    from repro.obs import emitter, reset_emitter

    reset_emitter()
    try:
        fs = ChaosFS(ChaosSchedule.of(DiskFull(start_op=0, count=1)))
        svc = Service(ServiceConfig(state_dir=tmp_path / "svc"), fs=fs)
        client = ServiceClient(app=svc.app)
        with pytest.raises(ApiError):
            client.submit(points=_points_payload(0))

        ring = emitter().recorder.since(0)
        injected = [r for r in ring if r["event"] == "chaos_injected"]
        flips = [r for r in ring if r["event"] == "health_flip"]
        assert len(injected) == 1 and injected[0]["plane"] == "fs"
        assert flips and flips[0]["after"] == Health.DEGRADED
        request_id = injected[0]["ctx"]["request_id"]
        assert request_id
        assert flips[0]["ctx"]["request_id"] == request_id
    finally:
        reset_emitter()


def test_point_queue_refuses_leases_it_cannot_journal(tmp_path):
    # Ops 0-1: the two point_enqueued appends; op 2: the lease grant.
    fs = ChaosFS(ChaosSchedule.of(DiskFull(start_op=2, count=1)))
    queue = PointQueue(tmp_path / "fab", fs=fs, lease_s=5.0)
    points = [OkPoint(token="a"), OkPoint(token="b")]
    _batch, ids = queue.enqueue(points)

    # The un-journalable grant is reverted and refused.
    assert queue.lease("w1") is None
    assert queue.health.state == Health.DEGRADED
    item = queue.get(ids[0])
    assert item.state == ItemState.PENDING
    assert item.attempts == 0  # the revert refunded the attempt charge
    assert item.worker is None

    # Disk back: the same item leases cleanly and health resolves.
    item = queue.lease("w1")
    assert item is not None and item.id == ids[0]
    assert item.attempts == 1
    assert queue.health.state == Health.HEALTHY
    assert queue.snapshot()["health"]["state"] == Health.HEALTHY


def test_fabric_healthz_route_reports_transitions(tmp_path):
    coordinator = FabricCoordinator(tmp_path / "fab")
    transport = InProcessTransport(coordinator.app)

    doc = transport.json("GET", "/v1/fabric/healthz")
    assert doc["status"] == "ok"

    coordinator.queue.health.degrade("journal", "EIO on append")
    doc = transport.json("GET", "/v1/fabric/healthz")
    assert doc["status"] == "degraded"
    assert doc["health"]["reasons"] == {"journal": "EIO on append"}

    coordinator.queue.health.resolve("journal")
    assert transport.json("GET", "/v1/fabric/healthz")["status"] == "ok"

    coordinator.close()  # terminal
    doc = transport.json("GET", "/v1/fabric/healthz")
    assert doc["status"] == "draining"


def test_health_gauges_are_one_hot(tmp_path):
    svc = Service(ServiceConfig(state_dir=tmp_path / "svc"))
    text = ServiceClient(app=svc.app).metrics()
    assert 'service_health{state="healthy"} 1' in text
    assert 'service_health{state="degraded"} 0' in text
    svc.health.degrade("cache", "disk full")
    text = ServiceClient(app=svc.app).metrics()
    assert 'service_health{state="healthy"} 0' in text
    assert 'service_health{state="degraded"} 1' in text
