"""ChaosSchedule: typed specs, plane filters, seeded replay, JSON."""

import pytest

from repro.chaos import (
    ChaosSchedule,
    DiskError,
    DiskFull,
    TornWrite,
    TransportFlap,
    WorkerHang,
    WorkerKill,
)


def _full_schedule() -> ChaosSchedule:
    return ChaosSchedule.of(
        TransportFlap(start_op=2, count=3, probability=0.5,
                      mode="error", status=503),
        TransportFlap(start_op=10, count=1, mode="delay", delay_s=0.2),
        DiskFull(start_op=4, count=2),
        DiskError(start_op=9),
        TornWrite(at_op=12, keep_bytes=7),
        WorkerKill(after_done=3),
        WorkerHang(after_done=5, hang_s=2.0, worker="w1"),
        seed=42,
    )


def test_plane_filters_partition_the_specs():
    schedule = _full_schedule()
    assert len(schedule) == 7
    assert len(schedule.transport_faults()) == 2
    assert len(schedule.fs_faults()) == 3
    assert len(schedule.process_faults()) == 2
    total = (schedule.transport_faults() + schedule.fs_faults()
             + schedule.process_faults())
    assert sorted(map(repr, total)) == sorted(map(repr, schedule.faults))
    with pytest.raises(ValueError):
        schedule.plane("gpu")


def test_json_round_trip_is_lossless():
    schedule = _full_schedule()
    again = ChaosSchedule.from_json(schedule.to_json())
    assert again == schedule
    assert again.seed == 42
    # And the dict form round-trips too.
    assert ChaosSchedule.from_dict(schedule.to_dict()) == schedule


def test_seeded_rng_replays_exactly():
    a = ChaosSchedule.of(seed=7).rng()
    b = ChaosSchedule.of(seed=7).rng()
    assert [a.random() for _ in range(20)] == \
        [b.random() for _ in range(20)]
    assert ChaosSchedule.of(seed=8).rng().random() != \
        ChaosSchedule.of(seed=7).rng().random()


@pytest.mark.parametrize("bad", [
    lambda: TransportFlap(start_op=-1, count=1),
    lambda: TransportFlap(start_op=0, count=0),
    lambda: TransportFlap(start_op=0, count=1, probability=0.0),
    lambda: TransportFlap(start_op=0, count=1, probability=1.5),
    lambda: TransportFlap(start_op=0, count=1, mode="explode"),
    lambda: TransportFlap(start_op=0, count=1, status=404),
    lambda: DiskFull(start_op=0, count=0),
    lambda: TornWrite(at_op=-1),
    lambda: TornWrite(at_op=0, keep_bytes=-1),
    lambda: WorkerKill(after_done=-1),
    lambda: WorkerHang(after_done=0, hang_s=0.0),
])
def test_spec_validation_rejects_bad_fields(bad):
    with pytest.raises(ValueError):
        bad()


def test_schedule_rejects_non_specs_and_bad_seed():
    with pytest.raises(TypeError):
        ChaosSchedule.of("not a spec")
    with pytest.raises(TypeError):
        ChaosSchedule.of(seed="42")


@pytest.mark.parametrize("doc,match", [
    ({"seed": 1}, "faults"),
    ({"faults": [{"no_type": 1}]}, "type"),
    ({"faults": [{"type": "meteor_strike"}]}, "unknown type"),
    ({"faults": [{"type": "disk_full", "bogus": 1}]}, "disk_full"),
    ({"faults": [], "seed": "x"}, "seed"),
])
def test_from_dict_rejects_malformed_documents(doc, match):
    with pytest.raises(ValueError, match=match):
        ChaosSchedule.from_dict(doc)
