"""The crash-safety gate: interrupt-at-boundary-k + resume == never crashed.

Every test runs one uninterrupted baseline, interrupts a second identical
run at an iteration boundary via ``CheckpointPlan.stop_at`` (or a
scheduled :class:`~repro.faults.ProcessKill`), resumes the captured
checkpoint with :func:`~repro.checkpoint.resume_training`, and asserts
the completed run is **bit-identical** to the baseline — pickle bytes of
the stats/timeline/utilization payloads, not approximate throughput.
"""

import dataclasses
import pickle

import pytest

from repro.checkpoint import (
    CheckpointError,
    CheckpointPlan,
    read_checkpoint,
    resume_training,
)
from repro.core import measure_training, paper_tuned_config
from repro.faults import (
    DegradedRail,
    FaultSchedule,
    LinkFlap,
    ProcessKill,
    RankCrash,
    RankRestart,
    StragglerGPU,
)

RAIL_A = ("nic:0:0", "switch:-1:1")
RAIL_B = ("nic:1:0", "switch:-1:1")


def _payload(m):
    """The comparable result payload (checkpoint plumbing excluded)."""
    return pickle.dumps(
        (m.stats, m.timeline, m.link_utilization, m.fault_report)
    )


def _detector(cfg, t_iter):
    """Failure-detector tuning crash schedules need to terminate."""
    return dataclasses.replace(cfg, horovod=cfg.horovod.with_(
        negotiation_deadline_s=0.15 * t_iter, suspect_retries=1,
    ))


def _t_iter(cfg, gpus):
    """One cheap probe run to scale fault windows to iteration time."""
    probe = measure_training(gpus, cfg, iterations=2, jitter_std=0.0)
    return probe.stats.mean_iteration_seconds


def test_plain_resume_bit_identical():
    cfg = paper_tuned_config()
    baseline = measure_training(6, cfg, iterations=5, seed=1)
    blob = _payload(baseline)
    for stop in (1, 3, 4):
        m = measure_training(
            6, cfg, iterations=5, seed=1,
            checkpoint=CheckpointPlan(every=1, stop_at=stop),
        )
        assert m.interrupted and m.checkpoint is not None
        assert m.checkpoint.boundary == stop
        resumed = resume_training(m.checkpoint)
        assert not resumed.interrupted
        assert _payload(resumed) == blob, f"divergence at boundary {stop}"


def test_faults_spanning_the_boundary_resume_bit_identical():
    cfg = paper_tuned_config()
    t = _t_iter(cfg, 12)
    schedule = FaultSchedule.of(
        StragglerGPU(rank=1, start_s=0.5 * t, duration_s=3.0 * t,
                     slowdown=2.0),
        DegradedRail(link=RAIL_A, start_s=1.2 * t, duration_s=2.5 * t,
                     factor=0.5),
        LinkFlap(link=RAIL_B, start_s=0.8 * t, duration_s=3.0 * t,
                 period_s=0.6 * t, down_s=0.2 * t, severity=0.4),
    )
    baseline = measure_training(12, cfg, iterations=5, seed=2,
                                schedule=schedule)
    assert baseline.fault_report["faults_applied"] >= 3
    m = measure_training(12, cfg, iterations=5, seed=2, schedule=schedule,
                         checkpoint=CheckpointPlan(every=1, stop_at=2))
    assert m.interrupted
    # The interrupt lands while every fault window is still open: the
    # resumed injector must replay link history and re-arm continuations.
    resumed = resume_training(m.checkpoint)
    assert _payload(resumed) == _payload(baseline)


def test_crash_restart_resume_bit_identical():
    base_cfg = paper_tuned_config()
    t = _t_iter(base_cfg, 6)
    cfg = _detector(base_cfg, t)
    schedule = FaultSchedule.of(
        RankCrash(rank=5, start_s=1.5 * t),
        RankRestart(rank=5, start_s=3.5 * t),
        StragglerGPU(rank=2, start_s=0.4 * t, duration_s=1.1 * t,
                     slowdown=2.5),
    )
    baseline = measure_training(6, cfg, iterations=6, seed=3,
                                schedule=schedule)
    assert baseline.fault_report["rank_crashes"] == 1
    assert baseline.fault_report["rank_restarts"] == 1
    m = measure_training(6, cfg, iterations=6, seed=3, schedule=schedule,
                         checkpoint=CheckpointPlan(every=1, stop_at=3))
    assert m.interrupted
    resumed = resume_training(m.checkpoint)
    assert _payload(resumed) == _payload(baseline)


def test_telemetry_attribution_identical_after_resume():
    from repro.telemetry import attribute_measurement

    cfg = paper_tuned_config()
    baseline = measure_training(6, cfg, iterations=4, seed=4, telemetry=True)
    base_att = pickle.dumps(attribute_measurement(baseline))
    m = measure_training(6, cfg, iterations=4, seed=4, telemetry=True,
                         checkpoint=CheckpointPlan(every=1, stop_at=2))
    assert m.interrupted
    # Capture/skip lifecycle shows up on the probe's registry.
    captures = m.telemetry.registry.get("checkpoint_captures_total")
    assert captures is not None and captures.default.value >= 1
    resumed = resume_training(m.checkpoint)
    assert pickle.dumps(resumed.stats) == pickle.dumps(baseline.stats)
    assert pickle.dumps(attribute_measurement(resumed)) == base_att
    resumes = resumed.telemetry.registry.get("checkpoint_resumes_total")
    assert resumes is not None and resumes.default.value == 1


def test_process_kill_and_disk_roundtrip(tmp_path):
    cfg = paper_tuned_config()
    baseline = measure_training(6, cfg, iterations=4, seed=5)
    kill_at = 0.6 * sum(baseline.stats.iteration_seconds)
    path = tmp_path / "run" / "train.ckpt"
    m = measure_training(
        6, cfg, iterations=4, seed=5,
        schedule=FaultSchedule.of(ProcessKill(start_s=kill_at)),
        checkpoint=CheckpointPlan(every=1, path=path),
    )
    assert m.interrupted
    assert m.fault_report["job_kills"] == 1
    assert path.exists()
    # Resume from the on-disk container, both by object and by path.
    ckpt = read_checkpoint(path)
    assert ckpt.boundary == m.checkpoint.boundary
    resumed = resume_training(path)
    # The resumed run keeps an (all-zero) fault_report — the ProcessKill
    # models the interruption and is stripped — so compare the result
    # payloads the baseline actually has.  The timeline is compared
    # event by event: a disk roundtrip deduplicates shared strings, so
    # whole-list pickle bytes differ in memo structure, not content.
    assert pickle.dumps(resumed.stats) == pickle.dumps(baseline.stats)
    assert pickle.dumps(resumed.link_utilization) == \
        pickle.dumps(baseline.link_utilization)
    assert len(resumed.timeline.events) == len(baseline.timeline.events)
    for ours, theirs in zip(resumed.timeline.events,
                            baseline.timeline.events):
        assert pickle.dumps(ours) == pickle.dumps(theirs)
    assert resumed.fault_report["job_kills"] == 0
    assert pickle.dumps(resume_training(ckpt).stats) == \
        pickle.dumps(baseline.stats)


def test_salt_mismatch_refused_unless_overridden():
    cfg = paper_tuned_config()
    m = measure_training(2, cfg, iterations=2, seed=6, checkpoint=1)
    ckpt = m.checkpoint
    assert ckpt is not None and not m.interrupted
    stale = dataclasses.replace(ckpt, sim_salt="0.0.0+sim-0")
    with pytest.raises(CheckpointError, match="salt"):
        resume_training(stale)
    resumed = resume_training(stale, allow_version_mismatch=True)
    assert resumed.stats.iteration_seconds


def test_checkpoint_plan_validation():
    with pytest.raises(ValueError):
        CheckpointPlan(every=-1)
    with pytest.raises(ValueError):
        CheckpointPlan(every=1, stop_at=0)
    with pytest.raises(ValueError):
        CheckpointPlan(every=0)  # no cadence and no stop: never captures


def test_checkpoint_rejects_fault_callable():
    cfg = paper_tuned_config()
    with pytest.raises(ValueError, match="fault="):
        measure_training(2, cfg, iterations=2, checkpoint=1,
                         fault=lambda topo: None)
