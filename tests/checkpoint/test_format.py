"""Tests for the checkpoint container format: magic, schema, CRC, atomics."""

import pickle
import struct

import pytest

from repro.checkpoint import (
    CheckpointError,
    SCHEMA_VERSION,
    dumps_checkpoint,
    inspect_checkpoint,
    loads_checkpoint,
    read_checkpoint,
    write_checkpoint,
)
from repro.checkpoint.format import _HEADER, MAGIC

PAYLOAD = {"clock": 1.25, "ranks": {0: [1, 2, 3]}, "nested": ("a", None)}


def test_dumps_loads_roundtrip():
    blob = dumps_checkpoint(PAYLOAD)
    assert blob.startswith(MAGIC)
    assert loads_checkpoint(blob) == PAYLOAD


def test_roundtrip_is_bit_identical():
    blob = dumps_checkpoint(PAYLOAD)
    assert pickle.dumps(loads_checkpoint(blob)) == pickle.dumps(PAYLOAD)


def test_write_read_roundtrip(tmp_path):
    path = tmp_path / "ckpt" / "train.ckpt"
    assert write_checkpoint(path, PAYLOAD) == path
    assert read_checkpoint(path) == PAYLOAD


def test_write_is_atomic_no_tmp_left(tmp_path):
    path = tmp_path / "train.ckpt"
    write_checkpoint(path, PAYLOAD)
    assert list(tmp_path.glob("*.tmp")) == []
    # Overwrite in place works and stays clean.
    write_checkpoint(path, {"v": 2})
    assert read_checkpoint(path) == {"v": 2}
    assert list(tmp_path.glob("*.tmp")) == []


@pytest.mark.parametrize("cut", [0, 4, len(MAGIC) + _HEADER.size - 1])
def test_truncated_header_detected(cut):
    blob = dumps_checkpoint(PAYLOAD)[:cut]
    with pytest.raises(CheckpointError, match="truncated"):
        loads_checkpoint(blob)


def test_truncated_payload_detected():
    blob = dumps_checkpoint(PAYLOAD)
    with pytest.raises(CheckpointError, match="truncated"):
        loads_checkpoint(blob[:-7])


def test_bitflip_detected_by_crc():
    blob = bytearray(dumps_checkpoint(PAYLOAD))
    blob[-1] ^= 0xFF
    with pytest.raises(CheckpointError, match="CRC"):
        loads_checkpoint(bytes(blob))


def test_bad_magic_rejected():
    blob = b"NOTACKPT" + dumps_checkpoint(PAYLOAD)[len(MAGIC):]
    with pytest.raises(CheckpointError, match="magic"):
        loads_checkpoint(blob)


def test_future_schema_rejected():
    blob = dumps_checkpoint(PAYLOAD)
    payload = blob[len(MAGIC) + _HEADER.size:]
    _, crc, length = _HEADER.unpack_from(blob, len(MAGIC))
    future = MAGIC + _HEADER.pack(SCHEMA_VERSION + 1, crc, length) + payload
    with pytest.raises(CheckpointError, match="newer than supported"):
        loads_checkpoint(future)


def test_read_missing_file(tmp_path):
    with pytest.raises(CheckpointError, match="cannot read"):
        read_checkpoint(tmp_path / "nope.ckpt")


def test_inspect_reports_header(tmp_path):
    path = write_checkpoint(tmp_path / "train.ckpt", PAYLOAD)
    info = inspect_checkpoint(path)
    assert info["schema_version"] == SCHEMA_VERSION
    assert info["complete"] is True
    assert info["payload_bytes"] == struct.unpack_from(
        "<Q", path.read_bytes(), len(MAGIC) + 6)[0]
    # Truncate: inspect still works (header only) but flags incomplete.
    blob = path.read_bytes()
    path.write_bytes(blob[:-10])
    assert inspect_checkpoint(path)["complete"] is False


def test_inspect_rejects_non_checkpoint(tmp_path):
    path = tmp_path / "junk.bin"
    path.write_bytes(b"hello world")
    with pytest.raises(CheckpointError, match="not a checkpoint"):
        inspect_checkpoint(path)
