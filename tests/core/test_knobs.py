"""Tests for the knob registry and named configurations."""

import pytest

from repro.core import KNOBS, Knob, paper_default_config, paper_tuned_config
from repro.sim.units import MiB


def test_registry_covers_paper_surface():
    assert set(KNOBS) == {
        "mpi_library",
        "fusion_threshold",
        "cycle_time",
        "hierarchical_allreduce",
    }


def test_knob_grids_nonempty_and_env_vars_spelled():
    for knob in KNOBS.values():
        assert knob.grid
    assert KNOBS["fusion_threshold"].env_var == "HOROVOD_FUSION_THRESHOLD"
    assert KNOBS["cycle_time"].env_var == "HOROVOD_CYCLE_TIME"


def test_knob_requires_grid():
    with pytest.raises(ValueError):
        Knob("x", "X", "desc", grid=())


def test_default_config_is_spectrum_with_horovod_defaults():
    cfg = paper_default_config()
    assert cfg.library.name == "SpectrumMPI"
    assert cfg.horovod.fusion_threshold_bytes == 64 * MiB
    assert not cfg.horovod.hierarchical_allreduce


def test_tuned_config_changes_every_staged_knob():
    default, tuned = paper_default_config(), paper_tuned_config()
    assert tuned.library.name == "MVAPICH2-GDR"
    assert tuned.horovod.fusion_threshold_bytes > default.horovod.fusion_threshold_bytes
    assert tuned.horovod.cycle_time_s < default.horovod.cycle_time_s
    assert tuned.horovod.hierarchical_allreduce


def test_labels_are_descriptive():
    assert "SpectrumMPI" in paper_default_config().label
    assert "hier=on" in paper_tuned_config().label
