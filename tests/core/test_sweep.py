"""Tests for the measurement driver and scaling-curve math."""

import pytest

from repro.core import (
    Measurement,
    ScalingCurve,
    ScalingPoint,
    measure_training,
    paper_default_config,
    paper_tuned_config,
)
from repro.core.sweep import model_profile


def quick(gpus, config=None, **kw):
    kw.setdefault("iterations", 2)
    kw.setdefault("jitter_std", 0.0)
    return measure_training(gpus, config or paper_default_config(), **kw)


class TestMeasureTraining:
    def test_single_gpu_matches_compute_baseline(self):
        m = quick(1)
        # One GPU: no peers to wait on; only cycle quantization remains.
        assert m.scaling_efficiency > 0.97
        assert m.images_per_second == pytest.approx(6.7, rel=0.08)

    def test_multi_gpu_structural_fields(self):
        m = quick(6, iterations=2)
        assert m.gpus == 6
        assert m.stats.world_size == 6
        assert m.runtime_stats.tensors_reduced > 0
        assert m.timeline.events
        assert 0 < m.scaling_efficiency <= 1.01

    def test_resnet_model_selectable(self):
        m = quick(2, model="resnet50")
        assert m.model == "resnet50"
        assert m.stats.per_gpu_batch == 128

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError):
            quick(2, model="vgg")

    def test_invalid_gpus_rejected(self):
        with pytest.raises(ValueError):
            quick(0)

    def test_profile_cache_returns_same_object(self):
        assert model_profile("deeplab") is model_profile("deeplab")

    def test_tuned_not_slower_than_default_small_scale(self):
        d = quick(12)
        t = quick(12, paper_tuned_config())
        assert t.images_per_second >= 0.98 * d.images_per_second

    def test_deterministic_given_seed(self):
        a = quick(6, jitter_std=0.03, seed=5)
        b = quick(6, jitter_std=0.03, seed=5)
        assert a.stats.iteration_seconds == b.stats.iteration_seconds

    def test_seed_changes_jittered_run(self):
        a = quick(6, jitter_std=0.03, seed=1)
        b = quick(6, jitter_std=0.03, seed=2)
        assert a.stats.iteration_seconds != b.stats.iteration_seconds


class TestScalingCurve:
    def make_point(self, gpus, ips, eff):
        return ScalingPoint(gpus, ips, eff, 1.0)

    def test_add_requires_increasing(self):
        c = ScalingCurve("x")
        c.add(self.make_point(1, 6.7, 1.0))
        with pytest.raises(ValueError):
            c.add(self.make_point(1, 6.7, 1.0))

    def test_point_lookup(self):
        c = ScalingCurve("x")
        c.add(self.make_point(1, 6.7, 1.0))
        c.add(self.make_point(6, 38.0, 0.94))
        assert c.point(6).images_per_second == 38.0
        with pytest.raises(KeyError):
            c.point(12)

    def test_speedup(self):
        c = ScalingCurve("x")
        c.add(self.make_point(1, 10.0, 1.0))
        c.add(self.make_point(4, 30.0, 0.75))
        assert c.speedup(4) == pytest.approx(3.0)

    def test_from_measurement_projection(self):
        m = quick(2)
        p = ScalingPoint.from_measurement(m)
        assert p.gpus == 2
        assert p.images_per_second == pytest.approx(m.images_per_second)

    def test_table_contains_rows(self):
        c = ScalingCurve("default")
        c.add(self.make_point(1, 6.7, 1.0))
        text = c.table()
        assert "default" in text and "6.7" in text

    def test_comparison_table(self):
        a, b = ScalingCurve("default"), ScalingCurve("tuned")
        for gpus, (ia, ib) in [(1, (6.7, 6.7)), (6, (36.0, 39.0))]:
            a.add(self.make_point(gpus, ia, ia / (6.7 * gpus)))
            b.add(self.make_point(gpus, ib, ib / (6.7 * gpus)))
        text = ScalingCurve.comparison_table([a, b])
        assert "speedup" in text
        assert "1.08x" in text  # 39/36

    def test_comparison_table_mismatched_counts_rejected(self):
        a, b = ScalingCurve("a"), ScalingCurve("b")
        a.add(self.make_point(1, 1.0, 1.0))
        b.add(self.make_point(2, 2.0, 1.0))
        with pytest.raises(ValueError):
            ScalingCurve.comparison_table([a, b])
        with pytest.raises(ValueError):
            ScalingCurve.comparison_table([])
