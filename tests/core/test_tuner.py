"""Tests for the staged tuning procedure (small probe scale, but a full
staged tune is still a multi-second simulation — marked slow)."""

import pytest

from repro.core import StagedTuner, paper_default_config
from repro.sim.units import MiB

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def outcome():
    """One small staged tune shared by the assertions below."""
    tuner = StagedTuner(
        probe_gpus=12,
        iterations=2,
        fusion_grid=(1 * MiB, 64 * MiB),
        cycle_grid=(2.5e-3, 10e-3),
    )
    return tuner.tune()


def test_runs_all_four_stages_in_paper_order(outcome):
    assert [s.stage for s in outcome.stages] == [
        "mpi_library",
        "fusion_threshold",
        "cycle_time",
        "hierarchical_allreduce",
    ]


def test_measurement_count_matches_grids(outcome):
    # 2 libraries + 2 fusion + 2 cycle + 2 hierarchical
    assert outcome.measurements == 8
    assert sum(len(s.candidates) for s in outcome.stages) == 8


def test_library_stage_picks_gdr(outcome):
    """The library stage must discover MVAPICH2-GDR (the paper's step 1):
    same throughput plateau, far less serialized allreduce time."""
    stage = outcome.stage("mpi_library")
    assert stage.chosen == "MVAPICH2-GDR"
    _, _, ar_gdr = stage.candidate("MVAPICH2-GDR")
    _, _, ar_spec = stage.candidate("SpectrumMPI")
    assert ar_gdr < ar_spec


def test_fusion_stage_prefers_larger_fusion(outcome):
    assert outcome.stage("fusion_threshold").chosen == "fusion=64MiB"


def test_best_config_is_gdr(outcome):
    assert outcome.best.library.name == "MVAPICH2-GDR"


def test_report_mentions_every_stage(outcome):
    report = outcome.report()
    for stage in outcome.stages:
        assert stage.stage in report
    assert "tuned:" in report


def test_stage_lookup_errors(outcome):
    with pytest.raises(KeyError):
        outcome.stage("nope")
    with pytest.raises(KeyError):
        outcome.stages[0].candidate("nope")


def test_tuner_validation():
    with pytest.raises(ValueError):
        StagedTuner(probe_gpus=1)


def test_tuner_respects_base_config():
    tuner = StagedTuner(
        probe_gpus=6,
        iterations=2,
        fusion_grid=(64 * MiB,),
        cycle_grid=(5e-3,),
    )
    base = paper_default_config()
    out = tuner.tune(base=base)
    assert out.best.horovod.cache_enabled == base.horovod.cache_enabled
