"""Property tests for the scaling-efficiency invariants.

The metrics in :mod:`repro.core.efficiency` encode the paper's headline
arithmetic.  These invariants must hold for *any* curve, not just the
measured ones:

* efficiency is speedup over the ideal-linear baseline: for a curve
  whose base point is one GPU at the single-GPU rate,
  ``speedup(g) / g == efficiency(g)``;
* the base point of such a curve has efficiency exactly 1.0;
* a curve whose per-GPU throughput never exceeds the single-GPU rate
  never exceeds ideal linear scaling (efficiency <= 1, speedup <= g).
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.efficiency import ScalingCurve, ScalingPoint

#: A synthetic curve: single-GPU rate, then (gpus, efficiency) points.
curves = st.tuples(
    st.floats(0.1, 1e4),
    st.lists(
        st.tuples(st.integers(2, 4096), st.floats(0.01, 1.0)),
        min_size=1, max_size=8,
        unique_by=lambda p: p[0],
    ),
)


def _build(single_ips: float, points: list[tuple[int, float]]) -> ScalingCurve:
    curve = ScalingCurve("synthetic")
    curve.add(ScalingPoint(
        gpus=1, images_per_second=single_ips, efficiency=1.0,
        mean_iteration_seconds=1.0 / single_ips,
    ))
    for gpus, eff in sorted(points):
        ips = gpus * single_ips * eff
        curve.add(ScalingPoint(
            gpus=gpus, images_per_second=ips, efficiency=eff,
            mean_iteration_seconds=1.0 / ips,
        ))
    return curve


@given(curves)
def test_efficiency_equals_speedup_over_gpus(params):
    single_ips, points = params
    curve = _build(single_ips, points)
    for p in curve.points:
        assert curve.speedup(p.gpus) / p.gpus == pytest.approx(p.efficiency)


@given(curves)
def test_base_point_efficiency_is_one(params):
    single_ips, points = params
    curve = _build(single_ips, points)
    base = curve.points[0]
    assert base.efficiency == 1.0
    assert curve.speedup(base.gpus) == pytest.approx(base.gpus)


@given(curves)
def test_never_exceeds_ideal_linear(params):
    single_ips, points = params
    curve = _build(single_ips, points)
    for p in curve.points:
        # Per-GPU throughput never above the single-GPU rate...
        assert p.images_per_second <= p.gpus * single_ips * (1 + 1e-9)
        # ...so speedup never exceeds the GPU count.
        assert curve.speedup(p.gpus) <= p.gpus * (1 + 1e-9)


@given(curves)
def test_monotone_gpu_order_enforced(params):
    single_ips, points = params
    curve = _build(single_ips, points)
    with pytest.raises(ValueError):
        curve.add(ScalingPoint(
            gpus=curve.points[-1].gpus,  # not strictly increasing
            images_per_second=1.0, efficiency=0.5,
            mean_iteration_seconds=1.0,
        ))


def test_measurement_efficiency_definition():
    """Measurement.scaling_efficiency is throughput over ideal linear."""
    from repro.core import measure_training, paper_tuned_config

    m = measure_training(2, paper_tuned_config(), iterations=2)
    ideal = m.gpus * m.single_gpu_images_per_second
    assert m.scaling_efficiency == pytest.approx(m.images_per_second / ideal)
    assert 0 < m.scaling_efficiency <= 1.0
