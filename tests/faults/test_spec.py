"""Fault spec and schedule: validation, JSON round-trips, schema errors."""

import pytest

from repro.faults import (
    DegradedRail,
    FaultSchedule,
    LinkFlap,
    RankCrash,
    RankRestart,
    StragglerGPU,
)

RAIL = ("nic:0:0", "switch:-1:1")


class TestValidation:
    def test_straggler_rejects_slowdown_below_one(self):
        with pytest.raises(ValueError):
            StragglerGPU(rank=0, start_s=0, duration_s=1, slowdown=1.0)
        with pytest.raises(ValueError):
            StragglerGPU(rank=0, start_s=0, duration_s=1, slowdown=0.5)

    def test_negative_times_rejected(self):
        with pytest.raises(ValueError):
            StragglerGPU(rank=0, start_s=-1, duration_s=1)
        with pytest.raises(ValueError):
            StragglerGPU(rank=0, start_s=0, duration_s=0)
        with pytest.raises(ValueError):
            RankCrash(rank=0, start_s=-0.1)

    def test_negative_rank_rejected(self):
        with pytest.raises(ValueError):
            RankCrash(rank=-1, start_s=0)
        with pytest.raises(ValueError):
            RankRestart(rank=-2, start_s=0)

    def test_flap_duty_cycle_bounds(self):
        with pytest.raises(ValueError):
            LinkFlap(link=RAIL, start_s=0, duration_s=1, period_s=0, down_s=0.1)
        with pytest.raises(ValueError):
            LinkFlap(link=RAIL, start_s=0, duration_s=1, period_s=0.5, down_s=0.6)
        with pytest.raises(ValueError):
            LinkFlap(link=RAIL, start_s=0, duration_s=1, period_s=0.5,
                     down_s=0.1, severity=1.0)

    def test_degraded_rail_factor_bounds(self):
        with pytest.raises(ValueError):
            DegradedRail(link=RAIL, start_s=0, duration_s=1, factor=0.0)
        with pytest.raises(ValueError):
            DegradedRail(link=RAIL, start_s=0, duration_s=1, factor=1.0)

    def test_bad_device_string_rejected(self):
        with pytest.raises(ValueError):
            DegradedRail(link=("nic:0", "switch:-1:1"), start_s=0,
                         duration_s=1, factor=0.5)
        with pytest.raises(ValueError):
            DegradedRail(link=("rocket:0:0", "switch:-1:1"), start_s=0,
                         duration_s=1, factor=0.5)

    def test_schedule_rejects_non_specs(self):
        with pytest.raises(TypeError):
            FaultSchedule(("not a spec",))


class TestRoundTrip:
    def schedule(self):
        return FaultSchedule.of(
            StragglerGPU(rank=3, start_s=0.5, duration_s=1.0, slowdown=2.5),
            LinkFlap(link=RAIL, start_s=0.2, duration_s=2.0, period_s=0.5,
                     down_s=0.1, severity=0.25),
            DegradedRail(link=RAIL, start_s=1.0, duration_s=1.5, factor=0.1),
            RankCrash(rank=5, start_s=2.0),
            RankRestart(rank=5, start_s=3.0),
        )

    def test_dict_round_trip(self):
        s = self.schedule()
        assert FaultSchedule.from_dict(s.to_dict()) == s

    def test_json_round_trip(self):
        s = self.schedule()
        assert FaultSchedule.from_json(s.to_json()) == s

    def test_iteration_and_len(self):
        s = self.schedule()
        assert len(s) == 5
        assert [type(f).__name__ for f in s] == [
            "StragglerGPU", "LinkFlap", "DegradedRail",
            "RankCrash", "RankRestart",
        ]

    def test_end_s(self):
        s = self.schedule()
        assert s.end_s() == pytest.approx(3.0)  # the restart at t=3
        assert FaultSchedule().end_s() == 0.0


class TestSchemaErrors:
    def test_missing_faults_key(self):
        with pytest.raises(ValueError, match="faults"):
            FaultSchedule.from_dict({"events": []})

    def test_unknown_type(self):
        with pytest.raises(ValueError, match="unknown type"):
            FaultSchedule.from_dict(
                {"faults": [{"type": "meteor_strike", "start_s": 0}]}
            )

    def test_missing_type(self):
        with pytest.raises(ValueError, match="type"):
            FaultSchedule.from_dict({"faults": [{"rank": 1}]})

    def test_unknown_field_reports_fault_index(self):
        with pytest.raises(ValueError, match="fault #0"):
            FaultSchedule.from_dict(
                {"faults": [{"type": "rank_crash", "rank": 1, "start_s": 0,
                             "bogus": 1}]}
            )

    def test_bad_link_shape(self):
        with pytest.raises(ValueError, match="2-element"):
            FaultSchedule.from_dict(
                {"faults": [{"type": "degraded_rail", "link": ["nic:0:0"],
                             "start_s": 0, "duration_s": 1, "factor": 0.5}]}
            )


class TestProcessKill:
    def test_negative_start_rejected(self):
        from repro.faults import ProcessKill

        with pytest.raises(ValueError, match="start_s must be >= 0"):
            ProcessKill(start_s=-0.5)

    def test_round_trips_through_dict_and_json(self):
        from repro.faults import ProcessKill

        s = FaultSchedule.of(ProcessKill(start_s=2.5))
        assert FaultSchedule.from_dict(s.to_dict()) == s
        assert FaultSchedule.from_json(s.to_json()) == s


class TestScheduleValidate:
    """Cross-spec validation: exact messages, not just 'it raises'."""

    def test_double_crash_without_restart(self):
        s = FaultSchedule.of(RankCrash(rank=2, start_s=1.0),
                             RankCrash(rank=2, start_s=2.0))
        with pytest.raises(ValueError) as err:
            s.validate()
        assert str(err.value) == (
            "rank 2 crashes again at 2s without a rank_restart in between"
        )

    def test_restart_without_preceding_crash(self):
        s = FaultSchedule.of(RankRestart(rank=1, start_s=0.5))
        with pytest.raises(ValueError) as err:
            s.validate()
        assert str(err.value) == (
            "rank_restart at 0.5s has no preceding rank_crash for rank 1"
        )

    def test_crash_order_is_by_time_not_declaration(self):
        # Declared restart-first but times alternate correctly: valid.
        s = FaultSchedule.of(RankRestart(rank=0, start_s=2.0),
                             RankCrash(rank=0, start_s=1.0),
                             RankCrash(rank=0, start_s=3.0))
        assert s.validate() is s

    def test_overlapping_flap_windows(self):
        s = FaultSchedule.of(
            LinkFlap(link=RAIL, start_s=0, duration_s=2.0, period_s=0.5,
                     down_s=0.1),
            LinkFlap(link=RAIL, start_s=1.5, duration_s=1.0, period_s=0.5,
                     down_s=0.1),
        )
        with pytest.raises(ValueError) as err:
            s.validate()
        assert str(err.value) == (
            "overlapping link_flap windows on link nic:0:0--switch:-1:1: "
            "[0,2)s and [1.5,2.5)s"
        )

    def test_adjacent_flap_windows_are_fine(self):
        s = FaultSchedule.of(
            LinkFlap(link=RAIL, start_s=0, duration_s=2.0, period_s=0.5,
                     down_s=0.1),
            LinkFlap(link=RAIL, start_s=2.0, duration_s=1.0, period_s=0.5,
                     down_s=0.1),
        )
        assert s.validate() is s

    def test_flaps_on_different_links_never_overlap(self):
        other = ("nic:1:0", "switch:-1:1")
        s = FaultSchedule.of(
            LinkFlap(link=RAIL, start_s=0, duration_s=2.0, period_s=0.5,
                     down_s=0.1),
            LinkFlap(link=other, start_s=1.0, duration_s=2.0, period_s=0.5,
                     down_s=0.1),
        )
        assert s.validate() is s

    def test_from_dict_validates_automatically(self):
        doc = {"faults": [
            {"type": "rank_restart", "rank": 4, "start_s": 1.0},
        ]}
        with pytest.raises(ValueError, match="no preceding rank_crash"):
            FaultSchedule.from_dict(doc)

    def test_negative_duration_exact_message(self):
        with pytest.raises(ValueError) as err:
            StragglerGPU(rank=0, start_s=0, duration_s=-1.0)
        assert str(err.value) == "duration_s must be > 0"
        with pytest.raises(ValueError) as err:
            DegradedRail(link=RAIL, start_s=0, duration_s=-2.0, factor=0.5)
        assert str(err.value) == "duration_s must be > 0"

    def test_negative_start_exact_message(self):
        with pytest.raises(ValueError) as err:
            LinkFlap(link=RAIL, start_s=-0.1, duration_s=1.0, period_s=0.5,
                     down_s=0.1)
        assert str(err.value) == "start_s must be >= 0"
