"""End-to-end resilience: the acceptance scenarios for ``repro.faults``.

Covers the runtime failure detector (suspect → retry → confirm →
elastic shrink), transfer retry over flapping links, exact revert of
fault windows, and the combined straggler + flap + mid-run-crash
schedule running to completion on the shrunken world.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.knobs import paper_tuned_config
from repro.core.sweep import measure_training
from repro.faults import (
    FaultSchedule,
    LinkFlap,
    RankCrash,
    RankRestart,
    StragglerGPU,
)
from repro.horovod import HorovodConfig, HorovodRuntime

from tests.mpi.conftest import make_comm

pytestmark = pytest.mark.slow

WORLD = 6
#: Flap scenarios need ranks on both sides of the EDR rail (two nodes).
WORLD2 = 12
ITERS = 6


def detector_config(base, deadline_s=0.1, retries=1):
    return dataclasses.replace(base, horovod=base.horovod.with_(
        negotiation_deadline_s=deadline_s, suspect_retries=retries,
    ))


@pytest.fixture(scope="module")
def baseline():
    return measure_training(WORLD, paper_tuned_config(), iterations=ITERS,
                            jitter_std=0.0)


@pytest.fixture(scope="module")
def baseline2():
    return measure_training(WORLD2, paper_tuned_config(), iterations=ITERS,
                            jitter_std=0.0)


class TestStragglerRevert:
    def test_revert_restores_step_time_within_1pct(self, baseline):
        """After the straggler window closes, iterations must return to
        the no-fault iteration time (exact revert, acceptance bound 1%)."""
        t_iter = baseline.stats.mean_iteration_seconds
        sched = FaultSchedule.of(StragglerGPU(
            rank=1, start_s=t_iter, duration_s=1.5 * t_iter, slowdown=3.0,
        ))
        m = measure_training(WORLD, paper_tuned_config(), iterations=ITERS,
                             jitter_std=0.0, schedule=sched)
        base_iters = baseline.stats.iteration_seconds
        fault_iters = m.stats.iteration_seconds
        assert len(fault_iters) == len(base_iters) == ITERS
        # The window covers iterations ~1-2; 3+ must match the baseline.
        for i in range(3, ITERS):
            assert fault_iters[i] == pytest.approx(base_iters[i], rel=0.01)
        # And the faulted window really was slower.
        assert max(fault_iters[1:3]) > 1.2 * max(base_iters[1:3])

    def test_straggler_is_suspected_but_never_evicted(self, baseline):
        t_iter = baseline.stats.mean_iteration_seconds
        cfg = detector_config(paper_tuned_config(), deadline_s=0.1 * t_iter)
        sched = FaultSchedule.of(StragglerGPU(
            rank=2, start_s=t_iter, duration_s=2 * t_iter, slowdown=4.0,
        ))
        m = measure_training(WORLD, cfg, iterations=ITERS, jitter_std=0.0,
                             schedule=sched)
        report = m.fault_report
        assert report["suspects"] > 0
        assert report["suspects"] == report["suspects_cleared"]
        assert report["rank_crashes"] == 0
        assert report["surviving_ranks"] == WORLD


class TestLinkFlapRetry:
    def test_flapped_rail_is_absorbed_by_retries(self, baseline2):
        t_iter = baseline2.stats.mean_iteration_seconds
        sched = FaultSchedule.of(LinkFlap(
            link=("nic:0:0", "switch:-1:1"), start_s=t_iter,
            duration_s=3 * t_iter, period_s=0.5 * t_iter,
            down_s=0.1 * t_iter,
        ))
        m = measure_training(WORLD2, paper_tuned_config(), iterations=ITERS,
                             jitter_std=0.0, schedule=sched)
        report = m.fault_report
        assert report["transfer_retries"] > 0
        assert report["transfer_timeouts"] == 0
        assert report["flap_cycles"] >= 3
        # Training still completed every iteration on every rank.
        assert all(v == ITERS for v in report["completed_iterations"].values())


class TestElasticShrink:
    def test_crash_shrinks_and_survivors_finish(self, baseline):
        t_iter = baseline.stats.mean_iteration_seconds
        cfg = detector_config(paper_tuned_config(), deadline_s=0.15 * t_iter)
        sched = FaultSchedule.of(RankCrash(rank=WORLD - 1,
                                           start_s=2.5 * t_iter))
        m = measure_training(WORLD, cfg, iterations=ITERS, jitter_std=0.0,
                             schedule=sched)
        report = m.fault_report
        assert report["rank_crashes"] == 1
        assert report["surviving_ranks"] == WORLD - 1
        completed = report["completed_iterations"]
        assert completed.get(WORLD - 1, 0) < ITERS  # the dead rank stopped
        for rank in range(WORLD - 1):
            assert completed[rank] == ITERS
        assert report["fault_phase_seconds"]["SUSPECT"] > 0
        assert report["fault_phase_seconds"]["RECOVER"] > 0

    def test_survivors_get_identical_bits_scaled_to_survivor_mean(self):
        """Replica consistency after a shrink: every survivor receives
        the same averaged tensor, and the divisor is the survivor count."""
        env, comm = make_comm(4)
        cfg = HorovodConfig.default().with_(
            cycle_time_s=1e-3, negotiation_deadline_s=5e-3, suspect_retries=1,
        )
        rt = HorovodRuntime(comm, cfg)
        results = {}

        def worker(env, rank):
            ev = rt.submit(rank, "g", np.full(8, float(rank)))
            results[rank] = yield ev

        procs = [env.process(worker(env, r)) for r in range(3)]

        def crash(env):
            # Rank 3 dies before submitting anything.
            yield env.timeout(1e-4)
            rt.report_crash(3)

        env.process(crash(env))
        env.run(until=env.all_of(procs))
        rt.shutdown()
        env.run()
        expected = np.full(8, (0.0 + 1.0 + 2.0) / 3)  # survivor mean
        for rank in range(3):
            np.testing.assert_array_equal(results[rank], expected)
        for rank in range(1, 3):
            np.testing.assert_array_equal(results[rank], results[0])
        assert rt.active_ranks == [0, 1, 2]
        assert rt.stats.rank_crashes == 1

    def test_restart_rejoins_the_run(self, baseline):
        t_iter = baseline.stats.mean_iteration_seconds
        cfg = detector_config(paper_tuned_config(), deadline_s=0.15 * t_iter)
        sched = FaultSchedule.of(
            RankCrash(rank=WORLD - 1, start_s=1.5 * t_iter),
            RankRestart(rank=WORLD - 1, start_s=3.5 * t_iter),
        )
        m = measure_training(WORLD, cfg, iterations=ITERS, jitter_std=0.0,
                             schedule=sched)
        report = m.fault_report
        assert report["rank_crashes"] == 1
        assert report["rank_restarts"] == 1
        assert report["surviving_ranks"] == WORLD
        assert report["completed_iterations"].get(WORLD - 1, 0) > 0


class TestCombinedAcceptance:
    def test_straggler_flap_crash_completes_on_shrunken_world(self, baseline2):
        t_iter = baseline2.stats.mean_iteration_seconds
        cfg = detector_config(paper_tuned_config(), deadline_s=0.15 * t_iter)
        sched = FaultSchedule.of(
            StragglerGPU(rank=1, start_s=t_iter, duration_s=2 * t_iter,
                         slowdown=3.0),
            LinkFlap(link=("nic:0:0", "switch:-1:1"), start_s=t_iter,
                     duration_s=4 * t_iter, period_s=t_iter,
                     down_s=0.3 * t_iter),
            RankCrash(rank=WORLD2 - 1, start_s=2.5 * t_iter),
        )
        m = measure_training(WORLD2, cfg, iterations=ITERS, jitter_std=0.0,
                             schedule=sched)
        report = m.fault_report
        # Completed on the shrunken world…
        assert report["surviving_ranks"] == WORLD2 - 1
        for rank in range(WORLD2 - 1):
            assert report["completed_iterations"][rank] == ITERS
        # …absorbed the flaps…
        assert report["transfer_retries"] > 0
        assert report["transfer_timeouts"] == 0
        # …paid a real but bounded throughput cost…
        retained = m.images_per_second / baseline2.images_per_second
        assert 0.3 < retained < 1.0
        # …and accounted for where the resilience time went.
        phases = report["fault_phase_seconds"]
        assert phases["FAULT"] > 0
        assert phases["SUSPECT"] > 0
        assert report["suspect_seconds"] > 0
