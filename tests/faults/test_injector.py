"""FaultInjector unit tests: apply/revert against a live topology."""

import pytest

from repro.cluster import Device, Fabric, build_summit
from repro.faults import (
    DegradedRail,
    FaultInjector,
    FaultSchedule,
    LinkFlap,
    RankCrash,
    RankRestart,
    StragglerGPU,
)
from repro.horovod.timeline import Timeline
from repro.sim import Environment

NIC, SW = Device.nic(0, 0), Device.switch(1)
RAIL = (str(NIC), str(SW))


def make(schedule, timeline=None):
    env = Environment()
    topo = build_summit(env, nodes=1)
    injector = FaultInjector(env, schedule, topology=topo, timeline=timeline)
    return env, topo, injector


class TestStraggler:
    def test_multiplier_window(self):
        sched = FaultSchedule.of(
            StragglerGPU(rank=2, start_s=1.0, duration_s=2.0, slowdown=3.0)
        )
        env, topo, inj = make(sched)
        inj.start()
        assert inj.compute_multiplier(2) == 1.0
        env.run(until=1.5)
        assert inj.compute_multiplier(2) == 3.0
        assert inj.compute_multiplier(0) == 1.0  # other ranks untouched
        env.run(until=3.5)
        assert inj.compute_multiplier(2) == 1.0
        assert inj.stats.applied == 1 and inj.stats.reverted == 1

    def test_overlapping_stragglers_multiply(self):
        sched = FaultSchedule.of(
            StragglerGPU(rank=0, start_s=0.0, duration_s=2.0, slowdown=2.0),
            StragglerGPU(rank=0, start_s=1.0, duration_s=2.0, slowdown=3.0),
        )
        env, topo, inj = make(sched)
        inj.start()
        env.run(until=1.5)
        assert inj.compute_multiplier(0) == pytest.approx(6.0)
        env.run(until=2.5)
        assert inj.compute_multiplier(0) == pytest.approx(3.0)
        env.run(until=3.5)
        assert inj.compute_multiplier(0) == 1.0


class TestDegradedRail:
    def test_apply_and_exact_revert(self):
        sched = FaultSchedule.of(
            DegradedRail(link=RAIL, start_s=1.0, duration_s=1.0, factor=0.25)
        )
        env, topo, inj = make(sched)
        inj.start()
        original = topo.link(NIC, SW).spec
        env.run(until=1.5)
        assert topo.link_factor(NIC, SW) == pytest.approx(0.25)
        env.run(until=2.5)
        assert topo.link_factor(NIC, SW) == 1.0
        assert topo.link(NIC, SW).spec == original

    def test_composes_with_preexisting_degradation(self):
        sched = FaultSchedule.of(
            DegradedRail(link=RAIL, start_s=1.0, duration_s=1.0, factor=0.5)
        )
        env, topo, inj = make(sched)
        topo.set_link_factor(NIC, SW, 0.5)
        inj.start()
        env.run(until=1.5)
        assert topo.link_factor(NIC, SW) == pytest.approx(0.25)
        env.run(until=2.5)
        # Reverts to the pre-existing 0.5, not all the way to nominal.
        assert topo.link_factor(NIC, SW) == pytest.approx(0.5)

    def test_needs_topology(self):
        env = Environment()
        sched = FaultSchedule.of(
            DegradedRail(link=RAIL, start_s=0.0, duration_s=1.0, factor=0.5)
        )
        inj = FaultInjector(env, sched, topology=None)
        inj.start()
        with pytest.raises(RuntimeError, match="topology"):
            env.run(until=2.0)


class TestLinkFlap:
    def test_hard_down_cycles(self):
        sched = FaultSchedule.of(
            LinkFlap(link=RAIL, start_s=1.0, duration_s=2.0,
                     period_s=1.0, down_s=0.4)
        )
        env, topo, inj = make(sched)
        inj.start()
        env.run(until=1.2)
        assert not topo.link(NIC, SW).up
        env.run(until=1.6)
        assert topo.link(NIC, SW).up
        env.run(until=2.2)
        assert not topo.link(NIC, SW).up
        env.run(until=3.5)
        assert topo.link(NIC, SW).up
        assert inj.stats.flap_cycles == 2

    def test_soft_flap_degrades_instead(self):
        sched = FaultSchedule.of(
            LinkFlap(link=RAIL, start_s=1.0, duration_s=1.0,
                     period_s=1.0, down_s=0.5, severity=0.1)
        )
        env, topo, inj = make(sched)
        inj.start()
        env.run(until=1.2)
        assert topo.link(NIC, SW).up  # degraded, not down
        assert topo.link_factor(NIC, SW) == pytest.approx(0.1)
        env.run(until=2.5)
        assert topo.link_factor(NIC, SW) == 1.0

    def test_records_fault_spans(self):
        timeline = Timeline()
        sched = FaultSchedule.of(
            LinkFlap(link=RAIL, start_s=1.0, duration_s=2.0,
                     period_s=1.0, down_s=0.4)
        )
        env, topo, inj = make(sched, timeline=timeline)
        inj.start()
        env.run(until=4.0)
        spans = timeline.spans("FAULT")
        assert len(spans) == 1
        assert spans[0].start_s == pytest.approx(1.0)
        assert spans[0].end_s == pytest.approx(3.0)


class _StubTrainer:
    def __init__(self):
        self.killed: list[int] = []
        self.restarted: list[int] = []

    def kill_rank(self, rank):
        self.killed.append(rank)

    def restart_rank(self, rank):
        self.restarted.append(rank)


class _StubRuntime:
    def __init__(self):
        self.crashes: list[int] = []
        self.restarts: list[int] = []

    def report_crash(self, rank):
        self.crashes.append(rank)

    def report_restart(self, rank):
        self.restarts.append(rank)


class TestRankLifecycle:
    def test_crash_and_restart_dispatch(self):
        env = Environment()
        sched = FaultSchedule.of(
            RankCrash(rank=3, start_s=1.0),
            RankRestart(rank=3, start_s=2.0),
        )
        trainer, runtime = _StubTrainer(), _StubRuntime()
        inj = FaultInjector(env, sched)
        inj.bind(runtime=runtime, trainer=trainer).start()
        env.run(until=3.0)
        assert trainer.killed == [3]
        assert runtime.crashes == [3]
        # The trainer's restart process owns runtime re-admission.
        assert trainer.restarted == [3]
        assert runtime.restarts == []
        assert inj.stats.crashes == 1 and inj.stats.restarts == 1

    def test_runtime_only_restart_readmits_directly(self):
        env = Environment()
        sched = FaultSchedule.of(RankRestart(rank=1, start_s=1.0))
        runtime = _StubRuntime()
        inj = FaultInjector(env, sched).bind(runtime=runtime)
        inj.start()
        env.run(until=2.0)
        assert runtime.restarts == [1]

    def test_unbound_crash_raises(self):
        env = Environment()
        sched = FaultSchedule.of(RankCrash(rank=0, start_s=0.5))
        FaultInjector(env, sched).start()
        with pytest.raises(RuntimeError, match="bound"):
            env.run(until=1.0)

    def test_start_is_idempotent(self):
        env = Environment()
        sched = FaultSchedule.of(RankCrash(rank=0, start_s=0.5))
        runtime = _StubRuntime()
        inj = FaultInjector(env, sched).bind(runtime=runtime)
        inj.start()
        inj.start()
        env.run(until=1.0)
        assert runtime.crashes == [0]
