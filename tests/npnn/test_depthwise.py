"""Gradcheck and equivalence tests for the depthwise convolution."""

import numpy as np
import pytest

from repro.npnn import DepthwiseConv2D
from repro.npnn.functional import (
    conv2d,
    depthwise_conv2d,
    depthwise_conv2d_backward,
)

from tests.npnn.test_functional import numeric_grad

RNG = np.random.default_rng(3)


def test_matches_grouped_dense_conv():
    """Depthwise conv == dense conv with a block-diagonal kernel."""
    x = RNG.standard_normal((2, 3, 6, 6))
    w = RNG.standard_normal((3, 3, 3))
    out, _ = depthwise_conv2d(x, w)
    dense_w = np.zeros((3, 3, 3, 3))
    for c in range(3):
        dense_w[c, c] = w[c]
    expected, _ = conv2d(x, dense_w)
    np.testing.assert_allclose(out, expected, rtol=1e-12)


def test_shape_with_stride():
    x = RNG.standard_normal((1, 4, 9, 9))
    w = RNG.standard_normal((4, 3, 3))
    out, _ = depthwise_conv2d(x, w, stride=2)
    assert out.shape == (1, 4, 5, 5)


def test_channel_mismatch_rejected():
    with pytest.raises(ValueError):
        depthwise_conv2d(np.zeros((1, 3, 4, 4)), np.zeros((2, 3, 3)))


@pytest.mark.parametrize("stride,dilation", [(1, 1), (2, 1), (1, 3)])
def test_gradcheck(stride, dilation):
    x = RNG.standard_normal((2, 2, 6, 6))
    w = RNG.standard_normal((2, 3, 3)) * 0.5
    out, ctx = depthwise_conv2d(x, w, stride=stride, dilation=dilation)
    target = RNG.standard_normal(out.shape)

    def loss():
        o, _ = depthwise_conv2d(x, w, stride=stride, dilation=dilation)
        return float((o * target).sum())

    dx, dw = depthwise_conv2d_backward(target, ctx)
    np.testing.assert_allclose(dx, numeric_grad(loss, x), atol=1e-6)
    np.testing.assert_allclose(dw, numeric_grad(loss, w), atol=1e-6)


class TestDepthwiseLayer:
    def test_forward_backward_shapes(self):
        layer = DepthwiseConv2D(4, stride=2, rng=RNG)
        x = RNG.standard_normal((2, 4, 8, 8))
        out = layer.forward(x)
        assert out.shape == (2, 4, 4, 4)
        dx = layer.backward(np.ones_like(out))
        assert dx.shape == x.shape
        assert layer.grads["depthwise_kernel"].any()

    def test_param_name_matches_cost_model_convention(self):
        layer = DepthwiseConv2D(2, rng=RNG)
        names = [n for n, _, _ in layer.named_params()]
        assert names == ["depthwise_kernel"]

    def test_sep_conv_composition(self):
        """DW + 1x1 pointwise = a separable conv block end to end."""
        from repro.npnn import Conv2D, Sequential

        sep = Sequential([
            ("dw", DepthwiseConv2D(3, dilation=2, rng=RNG)),
            ("pw", Conv2D(3, 8, k=1, rng=RNG)),
        ])
        x = RNG.standard_normal((1, 3, 8, 8))
        out = sep.forward(x)
        assert out.shape == (1, 8, 8, 8)
        sep.backward(np.ones_like(out))
