"""Tests for the terminal mask renderer."""

import numpy as np
import pytest

from repro.npnn.viz import render_mask, side_by_side


def test_render_basic():
    mask = np.array([[0, 1], [2, 0]])
    assert render_mask(mask) == ".#\no."


def test_render_rejects_bad_input():
    with pytest.raises(ValueError):
        render_mask(np.zeros((2, 2, 2), dtype=int))
    with pytest.raises(ValueError):
        render_mask(np.full((2, 2), 99))
    with pytest.raises(ValueError):
        render_mask(np.full((2, 2), -1))


def test_side_by_side_layout():
    a = np.zeros((2, 3), dtype=int)
    b = np.ones((2, 3), dtype=int)
    out = side_by_side(a, b)
    lines = out.splitlines()
    assert lines[0].startswith("truth")
    assert "prediction" in lines[0]
    assert lines[1] == "...   ###"


def test_side_by_side_shape_mismatch():
    with pytest.raises(ValueError):
        side_by_side(np.zeros((2, 2), int), np.zeros((3, 3), int))
