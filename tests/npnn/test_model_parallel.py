"""End-to-end tests: MiniDeepLab learning and data-parallel exactness."""

import numpy as np
import pytest

from repro.data import VOCMini
from repro.npnn import DataParallelTrainer, MiniDeepLab, ParallelConfig
from repro.npnn.loss import softmax_cross_entropy


class TestMiniDeepLab:
    def test_output_shape(self):
        model = MiniDeepLab(num_classes=4, width=4)
        x = np.random.default_rng(0).standard_normal((2, 3, 16, 16))
        out = model.forward(x)
        assert out.shape == (2, 4, 16, 16)

    def test_full_model_gradcheck_sampled(self):
        model = MiniDeepLab(num_classes=3, width=2, seed=1)
        rng = np.random.default_rng(0)
        x = rng.standard_normal((2, 3, 8, 8))
        y = rng.integers(0, 3, (2, 8, 8))
        model.zero_grads()
        loss0, d = softmax_cross_entropy(model.forward(x), y)
        model.backward(d)
        eps = 1e-6
        checked = 0
        for name, p, g in model.named_params():
            flat, gflat = p.ravel(), g.ravel()
            for i in range(0, flat.size, max(1, flat.size // 3)):
                orig = flat[i]
                flat[i] = orig + eps
                lp, _ = softmax_cross_entropy(model.forward(x), y)
                flat[i] = orig - eps
                lm, _ = softmax_cross_entropy(model.forward(x), y)
                flat[i] = orig
                fd = (lp - lm) / (2 * eps)
                assert gflat[i] == pytest.approx(fd, abs=2e-6), name
                checked += 1
        assert checked > 30

    def test_same_seed_same_init(self):
        a, b = MiniDeepLab(seed=4, width=4), MiniDeepLab(seed=4, width=4)
        for (na, pa, _), (nb, pb, _) in zip(a.named_params(), b.named_params()):
            assert na == nb
            np.testing.assert_array_equal(pa, pb)

    def test_different_seed_different_init(self):
        a, b = MiniDeepLab(seed=1, width=4), MiniDeepLab(seed=2, width=4)
        pa = next(iter(a.named_params()))[1]
        pb = next(iter(b.named_params()))[1]
        assert not np.array_equal(pa, pb)

    def test_predict_returns_class_ids(self):
        model = MiniDeepLab(num_classes=5, width=4)
        x = np.random.default_rng(0).standard_normal((1, 3, 16, 16))
        pred = model.predict(x)
        assert pred.shape == (1, 16, 16)
        assert pred.min() >= 0 and pred.max() < 5
        assert model.training  # predict restores train mode

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            MiniDeepLab(width=4).forward(np.zeros((1, 4, 8, 8)))
        with pytest.raises(ValueError):
            MiniDeepLab(width=1)


class TestDataParallel:
    def make_trainer(self, world=4, width=4, size=16):
        ds = VOCMini(size=size, num_classes=3, seed=2)
        cfg = ParallelConfig(world=world, per_replica_batch=2, width=width,
                             lr=0.05)
        return DataParallelTrainer(ds, cfg)

    def test_allreduce_equals_manual_average(self):
        tr = self.make_trainer()
        shards = tr.global_batch_indices(64)
        grads = [tr.local_gradients(r, shards[r])[1] for r in range(4)]
        averaged, sim_s = tr.allreduce_gradients(grads)
        assert sim_s > 0
        for name in grads[0]:
            manual = sum(g[name] for g in grads) / 4
            np.testing.assert_allclose(averaged[0][name], manual, atol=1e-14)

    def test_all_ranks_receive_identical_bits(self):
        tr = self.make_trainer()
        shards = tr.global_batch_indices(64)
        grads = [tr.local_gradients(r, shards[r])[1] for r in range(4)]
        averaged, _ = tr.allreduce_gradients(grads)
        for name in averaged[0]:
            for r in range(1, 4):
                np.testing.assert_array_equal(averaged[0][name], averaged[r][name])

    def test_replicas_stay_in_sync_across_steps(self):
        tr = self.make_trainer()
        tr.train(3)
        assert tr.replicas_in_sync()

    def test_world_1_is_plain_sgd(self):
        tr = self.make_trainer(world=1)
        res = tr.step()
        assert res.allreduce_sim_seconds == 0.0

    def test_loss_decreases(self):
        tr = self.make_trainer()
        history = tr.train(12)
        first = np.mean([h.mean_loss for h in history[:3]])
        last = np.mean([h.mean_loss for h in history[-3:]])
        assert last < first

    def test_learns_above_chance_miou(self):
        tr = self.make_trainer()
        val = list(range(500, 516))
        initial = tr.evaluate(val)
        tr.train(30)
        final = tr.evaluate(val)
        assert final > initial
        assert final > 0.3

    def test_distributed_matches_serial_sgd_trajectory(self):
        """K replicas with allreduced grads == 1 process applying the mean
        of the shard gradients (same init, same momenta) for every step."""
        ds = VOCMini(size=16, num_classes=3, seed=2)
        cfg = ParallelConfig(world=2, per_replica_batch=2, width=4, lr=0.05)
        dp = DataParallelTrainer(ds, cfg)
        serial = DataParallelTrainer(ds, cfg)  # same seed -> same init/batches
        for _ in range(3):
            # Distributed step.
            dp.step(n_samples=64)
            # Serial reference: same shards (same rng stream), mean grads
            # applied directly without the runtime.
            shards = serial.global_batch_indices(64)
            grads = [
                serial.local_gradients(r, shards[r])[1]
                for r in range(cfg.world)
            ]
            mean_grads = {
                name: sum(g[name] for g in grads) / cfg.world
                for name in grads[0]
            }
            for rank in range(cfg.world):
                serial.optimizers[rank].step(
                    serial.replicas[rank], grads_override=mean_grads
                )
        for (na, pa, _), (nb, pb, _) in zip(
            dp.replicas[0].named_params(), serial.replicas[0].named_params()
        ):
            np.testing.assert_allclose(pa, pb, atol=1e-12), na

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ParallelConfig(world=0)
        with pytest.raises(ValueError):
            ParallelConfig(per_replica_batch=0)
        assert ParallelConfig(world=3, per_replica_batch=4).global_batch == 12
