"""Gradcheck and geometry tests for the functional kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.npnn.functional import (
    bilinear_resize,
    bilinear_resize_backward,
    conv2d,
    conv2d_backward,
    conv_geometry,
)

RNG = np.random.default_rng(0)


def numeric_grad(f, x, eps=1e-6):
    """Central-difference gradient of scalar f at x."""
    grad = np.zeros_like(x)
    flat = x.ravel()
    gflat = grad.ravel()
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        f_plus = f()
        flat[i] = orig - eps
        f_minus = f()
        flat[i] = orig
        gflat[i] = (f_plus - f_minus) / (2 * eps)
    return grad


class TestConvGeometry:
    def test_same_padding_matches_tf(self):
        out, before, after = conv_geometry((5, 5), 3, 1, 1)
        assert out == (5, 5) and before == (1, 1) and after == (1, 1)

    def test_stride_2(self):
        out, _, _ = conv_geometry((5, 5), 3, 2, 1)
        assert out == (3, 3)

    def test_dilation_widens_padding(self):
        _, before, after = conv_geometry((7, 7), 3, 1, 3)
        assert before == (3, 3) and after == (3, 3)

    def test_invalid(self):
        with pytest.raises(ValueError):
            conv_geometry((5, 5), 0, 1, 1)

    @given(st.integers(1, 20), st.integers(1, 3), st.integers(1, 3),
           st.integers(1, 3))
    def test_output_matches_ceil(self, dim, k, s, d):
        out, _, _ = conv_geometry((dim, dim), k, s, d)
        assert out[0] == -(-dim // s)


class TestConv2D:
    def test_identity_kernel(self):
        x = RNG.standard_normal((1, 1, 4, 4))
        w = np.zeros((1, 1, 1, 1))
        w[0, 0, 0, 0] = 1.0
        out, _ = conv2d(x, w)
        np.testing.assert_allclose(out, x)

    def test_channel_sum_1x1(self):
        x = RNG.standard_normal((2, 3, 4, 4))
        w = np.ones((1, 3, 1, 1))
        out, _ = conv2d(x, w)
        np.testing.assert_allclose(out[:, 0], x.sum(axis=1))

    def test_matches_direct_convolution(self):
        """Cross-check im2col against a naive nested-loop conv."""
        x = RNG.standard_normal((1, 2, 5, 5))
        w = RNG.standard_normal((3, 2, 3, 3))
        out, _ = conv2d(x, w)
        xp = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
        expected = np.zeros((1, 3, 5, 5))
        for f in range(3):
            for i in range(5):
                for j in range(5):
                    expected[0, f, i, j] = (
                        xp[0, :, i:i + 3, j:j + 3] * w[f]
                    ).sum()
        np.testing.assert_allclose(out, expected, rtol=1e-12)

    def test_bias_added(self):
        x = np.zeros((1, 1, 2, 2))
        w = np.zeros((2, 1, 1, 1))
        b = np.array([3.0, -1.0])
        out, _ = conv2d(x, w, b)
        assert (out[0, 0] == 3.0).all() and (out[0, 1] == -1.0).all()

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            conv2d(np.zeros((1, 2, 4, 4)), np.zeros((1, 3, 3, 3)))

    @pytest.mark.parametrize("stride,dilation", [(1, 1), (2, 1), (1, 2), (2, 3)])
    def test_gradcheck(self, stride, dilation):
        x = RNG.standard_normal((2, 2, 6, 6))
        w = RNG.standard_normal((3, 2, 3, 3)) * 0.5
        b = RNG.standard_normal(3) * 0.1
        target = None

        def loss():
            out, _ = conv2d(x, w, b, stride=stride, dilation=dilation)
            return float((out * target).sum())

        out, ctx = conv2d(x, w, b, stride=stride, dilation=dilation)
        target = RNG.standard_normal(out.shape)
        dx, dw, db = conv2d_backward(target, ctx)
        np.testing.assert_allclose(dx, numeric_grad(loss, x), atol=1e-6)
        np.testing.assert_allclose(dw, numeric_grad(loss, w), atol=1e-6)
        np.testing.assert_allclose(db, numeric_grad(loss, b), atol=1e-6)


class TestBilinearResize:
    def test_identity_same_size(self):
        x = RNG.standard_normal((1, 2, 4, 4))
        out, _ = bilinear_resize(x, (4, 4))
        np.testing.assert_allclose(out, x)

    def test_constant_preserved(self):
        x = np.full((1, 1, 3, 3), 7.0)
        out, _ = bilinear_resize(x, (9, 9))
        np.testing.assert_allclose(out, 7.0)

    def test_upsample_shape(self):
        out, _ = bilinear_resize(RNG.standard_normal((2, 3, 8, 8)), (16, 16))
        assert out.shape == (2, 3, 16, 16)

    def test_downsample_shape(self):
        out, _ = bilinear_resize(RNG.standard_normal((1, 1, 8, 8)), (3, 5))
        assert out.shape == (1, 1, 3, 5)

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            bilinear_resize(RNG.standard_normal((1, 1, 4, 4)), (0, 4))

    def test_gradcheck(self):
        x = RNG.standard_normal((1, 2, 4, 4))
        out, ctx = bilinear_resize(x, (7, 5))
        target = RNG.standard_normal(out.shape)

        def loss():
            o, _ = bilinear_resize(x, (7, 5))
            return float((o * target).sum())

        dx = bilinear_resize_backward(target, ctx)
        np.testing.assert_allclose(dx, numeric_grad(loss, x), atol=1e-6)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(2, 6), st.integers(2, 10))
    def test_energy_conserved_for_constant_grad(self, in_dim, out_dim):
        """Sum of backward(ones) equals number of output pixels (the
        bilinear weights at each output pixel sum to 1)."""
        x = RNG.standard_normal((1, 1, in_dim, in_dim))
        _, ctx = bilinear_resize(x, (out_dim, out_dim))
        dx = bilinear_resize_backward(np.ones((1, 1, out_dim, out_dim)), ctx)
        assert dx.sum() == pytest.approx(out_dim * out_dim)
