"""Tests for the separable-convolution MiniDeepLab variant."""

import numpy as np
import pytest

from repro.data import VOCMini
from repro.npnn import DataParallelTrainer, MiniDeepLab, ParallelConfig
from repro.npnn.loss import softmax_cross_entropy


def test_separable_variant_has_fewer_params():
    dense = MiniDeepLab(width=8, separable=False)
    sep = MiniDeepLab(width=8, separable=True)
    assert sep.num_params < dense.num_params


def test_separable_uses_depthwise_tensors():
    sep = MiniDeepLab(width=4, separable=True)
    names = [n for n, _, _ in sep.named_params()]
    assert any("depthwise_kernel" in n for n in names)
    assert any(n.startswith("aspp1/aspp1_dw") for n in names)


def test_separable_gradcheck_sampled():
    model = MiniDeepLab(num_classes=3, width=2, seed=2, separable=True)
    rng = np.random.default_rng(1)
    x = rng.standard_normal((1, 3, 8, 8))
    y = rng.integers(0, 3, (1, 8, 8))
    model.zero_grads()
    _, d = softmax_cross_entropy(model.forward(x), y)
    model.backward(d)
    eps = 1e-6
    checked = 0
    for name, p, g in model.named_params():
        if "depthwise" not in name and "dw" not in name:
            continue
        flat, gflat = p.ravel(), g.ravel()
        for i in range(0, flat.size, max(1, flat.size // 2)):
            orig = flat[i]
            flat[i] = orig + eps
            lp, _ = softmax_cross_entropy(model.forward(x), y)
            flat[i] = orig - eps
            lm, _ = softmax_cross_entropy(model.forward(x), y)
            flat[i] = orig
            assert gflat[i] == pytest.approx((lp - lm) / (2 * eps), abs=2e-6), name
            checked += 1
    assert checked >= 4


def test_separable_variant_trains_in_parallel():
    ds = VOCMini(size=16, num_classes=3, seed=5)
    cfg = ParallelConfig(world=2, per_replica_batch=2, width=4, lr=0.05)
    trainer = DataParallelTrainer(ds, cfg)
    # Swap in separable replicas (same seeds -> identical init).
    trainer.replicas = [
        MiniDeepLab(num_classes=3, width=4, seed=cfg.seed, separable=True)
        for _ in range(2)
    ]
    history = trainer.train(6)
    assert trainer.replicas_in_sync()
    assert history[-1].mean_loss < history[0].mean_loss
