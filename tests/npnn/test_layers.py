"""Tests for layers, loss, optimizer, and metrics."""

import numpy as np
import pytest

from repro.npnn import (
    BatchNorm2D,
    Concat,
    Conv2D,
    ReLU,
    SGD,
    Sequential,
    confusion_matrix,
    mean_iou,
    pixel_accuracy,
    softmax_cross_entropy,
)

RNG = np.random.default_rng(7)


class TestConv2DLayer:
    def test_deterministic_init_from_rng(self):
        a = Conv2D(3, 4, rng=np.random.default_rng(5))
        b = Conv2D(3, 4, rng=np.random.default_rng(5))
        np.testing.assert_array_equal(a.params["weight"], b.params["weight"])

    def test_forward_backward_shapes(self):
        layer = Conv2D(3, 8, stride=2, rng=RNG)
        x = RNG.standard_normal((2, 3, 8, 8))
        out = layer.forward(x)
        assert out.shape == (2, 8, 4, 4)
        dx = layer.backward(np.ones_like(out))
        assert dx.shape == x.shape
        assert layer.grads["weight"].any()

    def test_grads_accumulate_and_zero(self):
        layer = Conv2D(1, 1, k=1, rng=RNG)
        x = np.ones((1, 1, 2, 2))
        layer.forward(x)
        layer.backward(np.ones((1, 1, 2, 2)))
        g1 = layer.grads["weight"].copy()
        layer.forward(x)
        layer.backward(np.ones((1, 1, 2, 2)))
        np.testing.assert_allclose(layer.grads["weight"], 2 * g1)
        layer.zero_grads()
        assert not layer.grads["weight"].any()


class TestBatchNorm:
    def test_normalizes_in_training(self):
        bn = BatchNorm2D(4)
        x = RNG.standard_normal((8, 4, 5, 5)) * 3 + 2
        out = bn.forward(x)
        assert out.mean(axis=(0, 2, 3)) == pytest.approx(np.zeros(4), abs=1e-10)
        assert out.var(axis=(0, 2, 3)) == pytest.approx(np.ones(4), rel=1e-3)

    def test_eval_uses_running_stats(self):
        bn = BatchNorm2D(2, momentum=0.0)  # running stats = last batch
        x = RNG.standard_normal((16, 2, 4, 4)) * 2 + 1
        bn.forward(x)
        bn.set_training(False)
        y = bn.forward(x)
        # Eval output on the same batch matches train-mode normalization
        # (up to the biased/unbiased var difference).
        assert abs(y.mean()) < 0.05

    def test_gradcheck(self):
        bn = BatchNorm2D(2)
        x = RNG.standard_normal((3, 2, 4, 4))
        target = RNG.standard_normal((3, 2, 4, 4))
        out = bn.forward(x)
        dx = bn.backward(target)

        def loss():
            return float((bn.forward(x) * target).sum())

        eps = 1e-6
        num = np.zeros_like(x)
        flat, nflat = x.ravel(), num.ravel()
        for i in range(0, flat.size, 7):  # sample every 7th element
            orig = flat[i]
            flat[i] = orig + eps
            lp = loss()
            flat[i] = orig - eps
            lm = loss()
            flat[i] = orig
            nflat[i] = (lp - lm) / (2 * eps)
        mask = num != 0
        np.testing.assert_allclose(dx[mask], num[mask], atol=1e-5)

    def test_gamma_beta_grads(self):
        bn = BatchNorm2D(2)
        x = RNG.standard_normal((3, 2, 4, 4))
        bn.forward(x)
        bn.backward(np.ones((3, 2, 4, 4)))
        np.testing.assert_allclose(bn.grads["beta"], 3 * 4 * 4)


class TestReLUAndContainers:
    def test_relu(self):
        r = ReLU()
        x = np.array([[-1.0, 2.0]])
        np.testing.assert_array_equal(r.forward(x), [[0.0, 2.0]])
        np.testing.assert_array_equal(r.backward(np.ones((1, 2))), [[0.0, 1.0]])

    def test_sequential_chains_and_names(self):
        seq = Sequential([
            ("c", Conv2D(1, 2, k=1, rng=RNG)),
            ("bn", BatchNorm2D(2)),
            ("r", ReLU()),
        ])
        x = RNG.standard_normal((2, 1, 3, 3))
        out = seq.forward(x)
        assert out.shape == (2, 2, 3, 3)
        seq.backward(np.ones_like(out))
        names = [n for n, _, _ in seq.named_params()]
        assert names == ["c/weight", "c/bias", "bn/gamma", "bn/beta"]

    def test_sequential_rejects_duplicate_names(self):
        with pytest.raises(ValueError):
            Sequential([("a", ReLU()), ("a", ReLU())])

    def test_concat_roundtrip(self):
        cat = Concat()
        a, b = RNG.standard_normal((1, 2, 3, 3)), RNG.standard_normal((1, 3, 3, 3))
        out = cat.forward([a, b])
        assert out.shape == (1, 5, 3, 3)
        da, db = cat.backward(out)
        np.testing.assert_array_equal(da, a)
        np.testing.assert_array_equal(db, b)

    def test_concat_backward_before_forward(self):
        with pytest.raises(RuntimeError):
            Concat().backward(np.zeros((1, 2, 2, 2)))


class TestLoss:
    def test_uniform_logits_loss_is_log_c(self):
        logits = np.zeros((1, 4, 2, 2))
        labels = np.zeros((1, 2, 2), dtype=int)
        loss, _ = softmax_cross_entropy(logits, labels)
        assert loss == pytest.approx(np.log(4))

    def test_gradient_sums_to_zero_per_pixel(self):
        logits = RNG.standard_normal((2, 3, 4, 4))
        labels = RNG.integers(0, 3, (2, 4, 4))
        _, d = softmax_cross_entropy(logits, labels)
        np.testing.assert_allclose(d.sum(axis=1), 0.0, atol=1e-12)

    def test_gradcheck(self):
        logits = RNG.standard_normal((1, 3, 2, 2))
        labels = RNG.integers(0, 3, (1, 2, 2))
        _, d = softmax_cross_entropy(logits, labels)
        eps = 1e-6
        num = np.zeros_like(logits)
        flat, nflat = logits.ravel(), num.ravel()
        for i in range(flat.size):
            orig = flat[i]
            flat[i] = orig + eps
            lp, _ = softmax_cross_entropy(logits, labels)
            flat[i] = orig - eps
            lm, _ = softmax_cross_entropy(logits, labels)
            flat[i] = orig
            nflat[i] = (lp - lm) / (2 * eps)
        np.testing.assert_allclose(d, num, atol=1e-7)

    def test_ignore_label(self):
        logits = RNG.standard_normal((1, 3, 2, 2))
        labels = np.full((1, 2, 2), 255)
        labels[0, 0, 0] = 1
        loss, d = softmax_cross_entropy(logits, labels, ignore_label=255)
        assert np.isfinite(loss)
        assert not d[0, :, 1, 1].any()  # ignored pixel has zero grad

    def test_all_ignored(self):
        logits = RNG.standard_normal((1, 3, 2, 2))
        labels = np.full((1, 2, 2), 255)
        loss, d = softmax_cross_entropy(logits, labels, ignore_label=255)
        assert loss == 0.0 and not d.any()

    def test_bad_labels_rejected(self):
        with pytest.raises(ValueError):
            softmax_cross_entropy(np.zeros((1, 3, 2, 2)), np.full((1, 2, 2), 9))
        with pytest.raises(ValueError):
            softmax_cross_entropy(np.zeros((1, 3, 2, 2)), np.zeros((1, 3, 3), int))


class TestSGD:
    def test_plain_sgd_step(self):
        layer = Conv2D(1, 1, k=1, bias=False, rng=RNG)
        layer.grads["weight"][:] = 1.0
        before = layer.params["weight"].copy()
        SGD(lr=0.1, momentum=0.0).step(layer)
        np.testing.assert_allclose(layer.params["weight"], before - 0.1)

    def test_momentum_accumulates(self):
        layer = Conv2D(1, 1, k=1, bias=False, rng=RNG)
        opt = SGD(lr=1.0, momentum=0.5)
        before = layer.params["weight"].copy()
        layer.grads["weight"][:] = 1.0
        opt.step(layer)  # v=1, p -= 1
        opt.step(layer)  # v=1.5, p -= 1.5
        np.testing.assert_allclose(layer.params["weight"], before - 2.5)

    def test_grads_override(self):
        layer = Conv2D(1, 1, k=1, bias=False, rng=RNG)
        layer.grads["weight"][:] = 99.0  # should be ignored
        before = layer.params["weight"].copy()
        SGD(lr=0.1, momentum=0.0).step(
            layer, grads_override={"weight": np.ones_like(before)}
        )
        np.testing.assert_allclose(layer.params["weight"], before - 0.1)

    def test_weight_decay_skips_1d_params(self):
        bn = BatchNorm2D(2)
        bn.grads["gamma"][:] = 0.0
        opt = SGD(lr=0.1, momentum=0.0, weight_decay=1.0)
        before = bn.params["gamma"].copy()
        opt.step(bn)
        np.testing.assert_allclose(bn.params["gamma"], before)

    def test_validation(self):
        with pytest.raises(ValueError):
            SGD(lr=0)
        with pytest.raises(ValueError):
            SGD(momentum=1.0)
        with pytest.raises(ValueError):
            SGD(weight_decay=-1)


class TestMetrics:
    def test_perfect_prediction(self):
        t = np.array([[0, 1], [2, 1]])
        m = confusion_matrix(t, t, 3)
        assert mean_iou(m) == 1.0
        assert pixel_accuracy(m) == 1.0

    def test_known_miou(self):
        target = np.array([0, 0, 1, 1])
        pred = np.array([0, 1, 1, 1])
        m = confusion_matrix(pred, target, 2)
        # class0: i=1 u=2 -> 0.5 ; class1: i=2 u=3 -> 2/3
        assert mean_iou(m) == pytest.approx((0.5 + 2 / 3) / 2)
        assert pixel_accuracy(m) == pytest.approx(0.75)

    def test_absent_class_excluded(self):
        target = np.zeros(4, dtype=int)
        pred = np.zeros(4, dtype=int)
        m = confusion_matrix(pred, target, 5)
        assert mean_iou(m) == 1.0  # only class 0 present

    def test_ignore_label(self):
        target = np.array([0, 255, 1])
        pred = np.array([0, 0, 1])
        m = confusion_matrix(pred, target, 2, ignore_label=255)
        assert m.sum() == 2 and mean_iou(m) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.zeros(2, int), np.zeros(3, int), 2)
        with pytest.raises(ValueError):
            confusion_matrix(np.zeros(2, int), np.full(2, 5), 2)
        with pytest.raises(ValueError):
            mean_iou(np.zeros((2, 3)))
        assert mean_iou(np.zeros((2, 2))) == 0.0
        assert pixel_accuracy(np.zeros((2, 2))) == 0.0
