"""E13 (extension) — scheduled fault injection & resilience sweep.

E13 runs the tuned configuration through declarative fault schedules
(straggler, flapping rail, mid-run crash, and all three combined);
E13b is the static single-degraded-rail ablation it grew out of.
"""

from repro.bench.experiments import e13_degraded_rail, e13_fault_injection


def test_e13_fault_injection(run_experiment):
    res = run_experiment(
        e13_fault_injection,
        gpus=24, iterations=4, slowdowns=(3.0,), flap_fractions=(0.3,),
    )
    assert res.measured["retained_baseline"] == 1.0
    # A 3x straggler gates the synchronous barrier for its window.
    assert res.measured["retained_straggler_x3"] < 0.95
    # A 30%-duty rail flap is absorbed by transfer retries.
    assert 0.5 < res.measured["retained_rail_flap_30pct"] <= 1.0
    flap_row = next(r for r in res.rows if r["scenario"] == "rail flap 30%")
    assert flap_row["retries"] > 0
    # The crash shrinks the world by one; survivors keep training.
    crash_row = next(r for r in res.rows if r["scenario"] == "rank crash")
    assert crash_row["survivors"] == 23
    assert crash_row["suspect (ms)"] > 0
    # The combined schedule completes with bounded throughput loss.
    assert 0.3 < res.measured["retained_straggler_flap_crash"] < 1.0


def test_e13b_degraded_rail(run_experiment):
    res = run_experiment(e13_degraded_rail, gpus=132, iterations=2)
    # A 4x and even 20x single-rail slowdown is absorbed by overlap.
    assert res.measured["retained_at_25pct_rail"] > 0.97
    assert res.measured["retained_at_5pct_rail"] > 0.95
    # Near-total rail loss gates the synchronous allreduce hard.
    assert res.measured["retained_at_1pct_rail"] < 0.6
    # Efficiency column tracks the same story.
    effs = [float(r["efficiency"].rstrip("%")) for r in res.rows]
    assert effs[-1] < 50 < effs[0]
