"""E13 (extension) — fault injection: one degraded InfiniBand rail."""

from repro.bench.experiments import e13_degraded_rail


def test_e13_degraded_rail(run_experiment):
    res = run_experiment(e13_degraded_rail, gpus=132, iterations=2)
    # A 4x and even 20x single-rail slowdown is absorbed by overlap.
    assert res.measured["retained_at_25pct_rail"] > 0.97
    assert res.measured["retained_at_5pct_rail"] > 0.95
    # Near-total rail loss gates the synchronous allreduce hard.
    assert res.measured["retained_at_1pct_rail"] < 0.6
    # Efficiency column tracks the same story.
    effs = [float(r["efficiency"].rstrip("%")) for r in res.rows]
    assert effs[-1] < 50 < effs[0]
