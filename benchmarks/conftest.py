"""Shared benchmark plumbing.

Every benchmark runs its experiment driver exactly once through
``benchmark.pedantic`` (the drivers are long simulations; statistical
repetition happens *inside* them via multiple training iterations),
prints the reproduced table, and persists the rows under
``bench_results/``.  Run with::

    pytest benchmarks/ --benchmark-only

Add ``-s`` to see the tables inline; they are also saved as JSON.
"""

import pytest

from repro.bench import save_result
from repro.bench.registry import get


@pytest.fixture
def run_experiment(benchmark):
    """Run a driver once under pytest-benchmark; print and persist."""

    def _run(driver, **kwargs):
        result = benchmark.pedantic(
            driver, kwargs=kwargs, rounds=1, iterations=1
        )
        print()
        print(result.table())
        save_result(result)
        return result

    return _run


@pytest.fixture
def run_spec(run_experiment):
    """Run a registry experiment by id (full-scale kwargs + overrides)."""

    def _run(exp_id, **overrides):
        spec = get(exp_id)
        return run_experiment(spec.fn, **{**spec.kwargs(), **overrides})

    return _run
