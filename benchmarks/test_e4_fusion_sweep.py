"""E4 — tensor-fusion threshold sweep at 132 GPUs."""

from repro.bench.experiments import e4_fusion_sweep
from repro.sim.units import MiB


def test_e4_fusion_sweep(run_experiment):
    res = run_experiment(
        e4_fusion_sweep,
        gpus=132,
        iterations=2,
        thresholds=(1 * MiB, 8 * MiB, 32 * MiB, 64 * MiB, 256 * MiB),
    )
    # Exposed-communication regime (Spectrum): small fusion is a
    # first-order throughput penalty (many α-heavy collectives).
    assert res.measured["small_fusion_penalty"] > 1.10
    assert res.measured["worst_spectrum"] == "1MiB"
    # Fewer fused ops as the threshold grows.
    ops = [row["Spectrum ops/iter"] for row in res.rows]
    assert ops == sorted(ops, reverse=True)
    # Hidden regime (GDR): throughput is flat (within 1%)...
    gdr = [row["GDR img/s"] for row in res.rows]
    assert max(gdr) / min(gdr) < 1.01
    # ...but serialized allreduce time still improves with fusion.
    assert res.rows[0]["GDR allreduce ms/iter"] >= res.rows[-1]["GDR allreduce ms/iter"]
