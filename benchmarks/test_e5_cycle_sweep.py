"""E5 — cycle-time sweep at 132 GPUs."""

from repro.bench.experiments import e5_cycle_sweep


def test_e5_cycle_sweep(run_experiment):
    res = run_experiment(
        e5_cycle_sweep,
        gpus=132,
        iterations=2,
        cycles_ms=(0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0),
    )
    # Large cycles stall the backward tail measurably.
    assert res.measured["large_cycle_penalty"] > 1.05
    assert res.measured["best_cycle_ms_spectrum"] <= 2.5
    # Stall grows with cycle time under the tuned setup (ends of the
    # sweep; mid-sweep points can jitter by fractions of a ms).
    stalls = [row["GDR stall ms/iter"] for row in res.rows]
    assert stalls[-1] > 10 * stalls[0]
    assert stalls[-1] == max(stalls)
    # More frequent cycles -> more (smaller) fused ops.
    ops = [row["GDR ops/iter"] for row in res.rows]
    assert ops == sorted(ops, reverse=True)
