"""E7 — final accuracy: 80.8% mIOU for distributed training, plus the
real npnn data-parallel run that proves the gradient path is exact."""

import pytest

from repro.bench.experiments import e7_miou, e7_npnn_training


def test_e7_miou_convergence_model(run_experiment):
    res = run_experiment(e7_miou)
    # Paper: 80.8% mIOU for the distributed run, "on par with published
    # accuracy for this model".
    assert res.measured["distributed_miou"] == pytest.approx(80.8, abs=0.5)
    single = res.rows[0]["mIOU %"]
    distributed = res.rows[1]["mIOU %"]
    assert abs(single - distributed) < 1.5  # on par
    # The linear-scaling warmup is what keeps it on par.
    assert res.rows[2]["mIOU %"] < distributed


def test_e7b_npnn_real_training(run_experiment):
    res = run_experiment(e7_npnn_training, steps=120, world=4)
    assert res.measured["replicas_bitwise_in_sync"] == "yes"
    # Real learning on real pixels: from near-chance to strong mIOU.
    assert res.measured["initial_miou"] < 0.2
    assert res.measured["final_miou"] > 0.6
    # mIOU trend over checkpoints is upward.
    mious = [row["mIOU"] for row in res.rows]
    assert mious[-1] > mious[0]
