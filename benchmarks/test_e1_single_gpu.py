"""E1 — single-GPU throughput table (DLv3+ 6.7 vs ResNet-50 300 img/s)."""

import pytest

from repro.bench.experiments import e1_single_gpu_throughput


def test_e1_single_gpu(run_experiment):
    res = run_experiment(e1_single_gpu_throughput, iterations=3)
    assert res.measured["deeplab_img_per_s"] == pytest.approx(6.7, rel=0.05)
    assert res.measured["resnet50_img_per_s"] == pytest.approx(300.0, rel=0.05)
    # The ~45x per-image cost gap that motivates scaling out.
    assert 40 < res.measured["throughput_ratio"] < 50
