"""E16 (extension) — critical-path diagnosis from span traces.

Walks each iteration's span DAG to the exact simulated critical path and
checks the paper's tuning story at the span level: the share of the
critical path spent in exposed allreduce collapses when tensor fusion +
MVAPICH2-GDR tuning is applied, and the per-span decomposition reconciles
with E14's coarse bucket attribution.
"""

from repro.bench.experiments import e16_critical_path


def test_e16_critical_path(run_experiment):
    res = run_experiment(
        e16_critical_path,
        gpu_counts=(6, 24, 96, 132), iterations=2,
    )
    # The span walk and the telemetry attribution are two views of the
    # same simulated run; they must agree bucket-for-bucket.
    assert res.measured["max_reconcile_error_s"] < 1e-6
    # Path segments tile the wall exactly (float-tolerance bound).
    for key, value in res.measured.items():
        if key.startswith("allreduce_cp_share_"):
            assert 0.0 <= value <= 1.0, key
    # The tuning win at max scale: exposed-allreduce share collapses.
    assert (res.measured["allreduce_cp_share_tuned_132"]
            < res.measured["allreduce_cp_share_default_132"])
    assert res.measured["allreduce_share_drop"] > 0
    # The result envelope carries a machine-readable diagnosis.
    assert res.trace_summary is not None
    assert res.trace_summary["critical_path_ms"] > 0
