"""E9 — which tuning step buys what, at 132 GPUs."""

from repro.bench.experiments import e9_ablation


def test_e9_ablation(run_experiment):
    res = run_experiment(e9_ablation, gpus=132, iterations=2)
    by_name = {r["configuration"]: r["img/s"] for r in res.rows}
    # The library swap alone recovers most of the gap...
    assert by_name["default + MVAPICH2-GDR only"] > 1.15 * by_name["default"]
    # ...the knob changes alone (hierarchical on Spectrum) also recover it
    # (one node-leader per rail removes the injection contention that the
    # default's flat doubling algorithm suffers)...
    assert by_name["tuned - GDR (Spectrum + tuned knobs)"] > 1.15 * by_name["default"]
    # ...and full tuning is at least as good as any partial variant.
    full = by_name["tuned (all steps)"]
    assert full >= 0.99 * max(by_name.values())
    # The default configuration is the unique poor one.
    assert res.measured["default_is_the_unique_poor_config"] == "yes"
    assert res.measured["full_tuning_gain"] > 1.2
