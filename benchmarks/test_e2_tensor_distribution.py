"""E2 — DLv3+ gradient tensor size distribution (fusion motivation)."""


def test_e2_tensor_distribution(run_spec):
    res = run_spec("E2")
    assert res.measured["tensor_count"] == 440
    # Long tail: the median tensor is tiny...
    assert res.measured["median_bytes"] < 16_000
    # ...while a handful of MB-scale tensors carry almost all bytes.
    assert float(res.rows[-1]["share of bytes"].rstrip("%")) > 90
    assert res.measured["total_MiB"] > 150  # ~41M params in fp32
