"""E11 (extension) — wall-clock time to train the standard VOC recipe."""

import pytest

from repro.bench.experiments import e11_time_to_train


def test_e11_time_to_train(run_experiment):
    res = run_experiment(e11_time_to_train, gpu_counts=(1, 24, 132),
                         iterations=3)
    # Single V100 at 6.7 img/s needs ~20 hours for 480k images.
    assert res.measured["single_gpu_hours"] == pytest.approx(20, rel=0.1)
    # At 132 GPUs the recipe takes well under an hour...
    assert res.measured["max_scale_tuned_hours"] < 0.25
    # ...and the tuning saves measurable machine time at scale.
    assert res.measured["max_scale_hours_saved"] > 0.02
    # Predicted accuracy stays near the paper's 80.8% at the 132-GPU batch.
    assert res.rows[-1]["predicted mIOU %"] > 77
