"""E12 (extension) — strong vs weak scaling of the tuned configuration."""

from repro.bench.experiments import e12_strong_vs_weak_scaling


def test_e12_strong_vs_weak(run_experiment):
    res = run_experiment(
        e12_strong_vs_weak_scaling,
        gpu_counts=(24, 48, 96),
        global_batch=96,
        iterations=3,
    )
    # Weak scaling stays near-linear (the paper's regime).
    assert float(res.rows[-1]["weak eff"].rstrip("%")) > 95
    # Strong scaling holds up well down to batch 1 per GPU...
    assert res.measured["strong_scaling_efficiency"] > 90
    # ...but is measurably below weak scaling at the smallest batch.
    strong_col = "strong img/s (G=96)"
    assert res.rows[-1][strong_col] <= res.rows[-1]["weak img/s (bs8/GPU)"]
    # Iteration time shrinks as the global batch spreads thinner.
    iters = [row["strong iter (ms)"] for row in res.rows]
    assert iters == sorted(iters, reverse=True)
