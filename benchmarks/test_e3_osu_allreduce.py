"""E3 — OSU-style allreduce latency curves: Spectrum MPI vs MVAPICH2-GDR."""

from repro.bench.experiments import e3_osu_allreduce


def test_e3_osu_allreduce(run_experiment):
    res = run_experiment(e3_osu_allreduce, gpus=24, iterations=3)
    # MVAPICH2-GDR must win at every message size (published OSU shape).
    assert res.measured["gdr_faster_at_all_sizes"] == "yes"
    # Small messages: the GPUDirect latency advantage (>2x at 24 ranks).
    assert res.measured["small_msg_speedup"] > 2
    # Large messages: algorithm + bandwidth advantage compounds (>2x).
    assert res.measured["large_msg_speedup"] > 2
    # Latency grows with size overall; local dips at algorithm-selection
    # switch points are expected (they appear in real OSU curves too).
    for column in ("SpectrumMPI (us)", "MVAPICH2-GDR (us)"):
        lat = [row[column] for row in res.rows]
        assert lat[-1] > 10 * lat[0]
        assert lat[-1] == max(lat)
