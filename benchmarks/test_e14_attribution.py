"""E14 (extension) — efficiency attribution: where does the time go?

Decomposes default and tuned runs at 6/24/96/132 GPUs into critical-path
buckets (compute, input stall, straggler skew, exposed communication,
fusion wait, fault suspect) that sum to wall time, and checks that the
paper's tuning wins show up as a shrinking exposed-comm + fusion-wait
share rather than just a better headline number.
"""

from repro.bench.experiments import e14_efficiency_attribution


def test_e14_efficiency_attribution(run_experiment):
    res = run_experiment(
        e14_efficiency_attribution,
        gpu_counts=(6, 24, 96, 132), iterations=2,
    )
    # The decomposition is exact by construction; 2% is the hard bound.
    assert res.measured["max_bucket_sum_error"] < 0.02
    # Tuning strictly shrinks the tunable overhead share at scale.
    for gpus in (24, 96, 132):
        assert res.measured[f"overhead_delta_{gpus}"] > 0, gpus
    # The default config's overhead grows with scale (that is the story).
    assert (res.measured["overhead_share_default_132"]
            > res.measured["overhead_share_default_6"])
    # Attribution agrees with the headline efficiency ordering.
    assert (res.measured["tuned_efficiency_132gpu"]
            > res.measured["default_efficiency_132gpu"])
