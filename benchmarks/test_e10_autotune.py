"""E10 — the staged tuning procedure rediscovers a tuned configuration."""

from repro.bench.experiments import e10_autotune_vs_staged


def test_e10_staged_tuning(run_experiment):
    res = run_experiment(
        e10_autotune_vs_staged,
        probe_gpus=24,
        validate_gpus=132,
        iterations=3,
        validate=True,
    )
    # Stage 1 must pick the GDR library.
    assert "MVAPICH2-GDR" in res.measured["staged_choice"]
    # The runtime autotuner lands on a comparable knob setting with a
    # comparable measurement budget.
    assert res.measured["autotune_measurements"] < 3 * res.measured[
        "staged_measurements"
    ]
    # The procedure's pick performs on par with the hand-tuned config at
    # full scale (within ~3 efficiency points) — the paper's central
    # methodological claim: knob tuning alone reaches near-linear scaling.
    pick = res.measured["tuner_pick_eff_at_scale"]
    hand = res.measured["hand_tuned_eff_at_scale"]
    assert pick > 85
    assert abs(pick - hand) < 4
