"""E8 — per-scale scaling-efficiency table (default vs tuned)."""

from repro.bench.experiments import e8_efficiency_table


def test_e8_efficiency_table(run_experiment):
    res = run_experiment(
        e8_efficiency_table, gpu_counts=(1, 24, 132), iterations=3
    )
    assert [row["GPUs"] for row in res.rows] == [1, 24, 132]
    # The tuning gain concentrates at scale.
    gains = [row["gain (points)"] for row in res.rows]
    assert gains[-1] == max(gains)
    assert gains[-1] > 15
    # At 1 GPU there is nothing to tune.
    assert abs(gains[0]) < 3
