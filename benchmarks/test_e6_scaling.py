"""E6 — the headline scaling comparison up to 132 GPUs.

Reproduces the abstract's quantitative claims: tuned Horovod +
MVAPICH2-GDR reaches ~92% scaling efficiency at 132 GPUs; default
Horovod + Spectrum MPI sits ~24 points lower; the tuning is worth ~1.3×
in end-to-end training throughput.
"""

from repro.bench.experiments import e6_scaling_comparison


def test_e6_scaling(run_experiment):
    res = run_experiment(
        e6_scaling_comparison,
        gpu_counts=(1, 6, 12, 24, 48, 96, 132),
        iterations=3,
    )
    measured = res.measured
    # Paper: 92% tuned efficiency at 132 GPUs (ours within a few points).
    assert 88 <= measured["tuned_efficiency_at_132"] <= 97
    # Paper: default ≈ 92/1.3 ≈ 71% (ours within several points).
    assert 60 <= measured["default_efficiency_at_132"] <= 78
    # Paper: 1.3x speedup from tuning at 132 GPUs.
    assert 1.2 <= measured["speedup_at_132"] <= 1.5
    # Paper: +23.9 efficiency points.
    assert 18 <= measured["efficiency_gain_points"] <= 30
    # Tuned efficiency declines gently with scale.
    tuned_effs = [float(r["tuned eff"].rstrip("%")) for r in res.rows]
    assert tuned_effs[0] >= 96  # 1 GPU is ~ideal (jitter-mean only)
    assert min(tuned_effs) > 85
